"""Stream QoS policies and the policy-to-datapath mapping (paper §5.2).

INSANE deliberately keeps the option set minimal: three per-stream policies
(datapath acceleration, tolerable resource consumption, time sensitivity).
The runtime maps them to the *most appropriate* technology available on the
host at stream-creation time; the mapping is a best-effort hint, and when
acceleration is requested but unavailable INSANE falls back to the kernel
stack and warns the user.
"""

import enum
from dataclasses import dataclass
from typing import Optional


class Acceleration(enum.Enum):
    """Does this data flow require datapath acceleration?"""

    NONE = "none"            # paper: "slow" — kernel networking suffices
    ACCELERATED = "fast"     # paper: "fast" — use a kernel-bypassing path


class ResourceBudget(enum.Enum):
    """Is resource usage a concern when choosing an accelerated path?"""

    UNCONSTRAINED = "unconstrained"   # busy-polling cores are acceptable
    CONSTRAINED = "constrained"       # avoid spinning cores (prefer XDP)


class TimeSensitivity(enum.Enum):
    """Packet scheduling strategy for the stream's packets."""

    BEST_EFFORT = "best-effort"       # FIFO scheduler
    TIME_SENSITIVE = "time-sensitive"  # IEEE 802.1Qbv time-aware scheduler


@dataclass(frozen=True)
class QosPolicy:
    """The QoS options attached to a stream (``options_t`` in Fig. 2)."""

    acceleration: Acceleration = Acceleration.NONE
    resources: ResourceBudget = ResourceBudget.UNCONSTRAINED
    time_sensitivity: TimeSensitivity = TimeSensitivity.BEST_EFFORT

    @classmethod
    def slow(cls, time_sensitive=False):
        """The paper's "slow" datapath QoS (kernel UDP)."""
        return cls(
            acceleration=Acceleration.NONE,
            time_sensitivity=(
                TimeSensitivity.TIME_SENSITIVE if time_sensitive else TimeSensitivity.BEST_EFFORT
            ),
        )

    @classmethod
    def fast(cls, constrained=False, time_sensitive=False):
        """The paper's "fast" datapath QoS (accelerated)."""
        return cls(
            acceleration=Acceleration.ACCELERATED,
            resources=(
                ResourceBudget.CONSTRAINED if constrained else ResourceBudget.UNCONSTRAINED
            ),
            time_sensitivity=(
                TimeSensitivity.TIME_SENSITIVE if time_sensitive else TimeSensitivity.BEST_EFFORT
            ),
        )


@dataclass(frozen=True)
class MappingDecision:
    """The outcome of mapping a stream's QoS onto a datapath."""

    datapath: str
    fallback: bool = False
    warning: Optional[str] = None


def default_strategy(policy, available):
    """The paper's default mapping (§5.2).

    * no acceleration required -> kernel UDP, always;
    * otherwise RDMA when present (best performance per resource);
    * otherwise DPDK when resource usage is not a concern;
    * otherwise XDP (no spinning cores);
    * if nothing accelerated is available -> kernel UDP, with a warning.
    """
    if policy.acceleration is Acceleration.NONE:
        return MappingDecision("udp")
    preference = ["rdma"]
    if policy.resources is ResourceBudget.UNCONSTRAINED:
        preference += ["dpdk", "xdp"]
    else:
        preference += ["xdp", "dpdk"]
    for name in preference:
        if name in available:
            return MappingDecision(name)
    return MappingDecision(
        "udp",
        fallback=True,
        warning=(
            "acceleration requested but no acceleration technology is "
            "available on this host; falling back to kernel UDP"
        ),
    )


#: The strategy used when the user supplies none.
DEFAULT_STRATEGY = default_strategy


def resolve_mapping(policy, available, strategy=None):
    """Apply ``strategy`` (or the default) and validate the result.

    A custom strategy may return either a datapath name or a full
    :class:`MappingDecision`; names that are not actually available raise
    :class:`~repro.core.errors.NoDatapathError` so misconfigured strategies
    fail loudly rather than silently degrading.
    """
    from repro.core.errors import NoDatapathError

    strategy = strategy or DEFAULT_STRATEGY
    decision = strategy(policy, frozenset(available))
    if isinstance(decision, str):
        decision = MappingDecision(decision)
    if decision.datapath not in available:
        raise NoDatapathError(
            "mapping strategy chose %r, which is unavailable (available: %s)"
            % (decision.datapath, sorted(available))
        )
    return decision
