"""Exceptions raised by the INSANE middleware.

Every failure surfaced by the public API is a subclass of
:class:`InsaneError` and carries a paper-style integer code (the values a C
binding of Fig. 2 would return from ``init_session`` / ``emit_data`` /
etc.).  Python callers catch the typed exception; bindings and logs use
``exc.code``.  The full code space lives in :data:`ERROR_CODES`.
"""

#: success code of the paper's C-style API (never raised, by definition).
INSANE_OK = 0


class InsaneError(RuntimeError):
    """Base class for middleware-level errors.

    :attr:`code` is the paper-style integer error code; subclasses override
    the class default, and an instance-level override may be passed at
    construction for call sites that need a more specific code.
    """

    code = 1  # generic middleware error

    def __init__(self, *args, code=None):
        super().__init__(*args)
        if code is not None:
            self.code = code


class SessionError(InsaneError):
    """Raised on API misuse: closed sessions, foreign buffers, etc."""

    code = 10


class PoolExhaustedError(InsaneError):
    """Raised when a memory pool has no free slots and the caller asked
    for a non-blocking allocation."""

    code = 20


class BufferLifecycleError(InsaneError):
    """Raised on double-release, use-after-release, or emit of a foreign
    buffer."""

    code = 21


class NoDatapathError(InsaneError):
    """Raised when a QoS mapping strategy yields a datapath that is not
    available on the host and no fallback is permitted."""

    code = 30


class QosValidationError(InsaneError, ValueError):
    """Raised by the :class:`~repro.core.qos.QosPolicy` builder on
    contradictory or unknown option combinations.

    Also a ``ValueError`` so call sites validating options generically
    keep working.
    """

    code = 31


class DatapathFailedError(InsaneError):
    """Raised when an operation requires a datapath binding that has been
    marked failed and not (yet) restored."""

    code = 40


class FailoverError(InsaneError):
    """Raised when a failed binding's streams cannot be re-mapped because
    no surviving datapath satisfies their policy."""

    code = 41


class FaultInjectionError(InsaneError):
    """Raised by :mod:`repro.faults` on invalid fault schedules (negative
    times, unknown targets, overlapping exclusive faults)."""

    code = 42


class TransferError(InsaneError):
    """Raised by the application-level reliable transport
    (:mod:`repro.apps.reliable`) on misuse or on exhausted retries."""

    code = 50


class UtcpError(InsaneError, ConnectionError):
    """Raised by the uTCP userspace transport on connection failures.

    Also a ``ConnectionError`` so pre-existing handlers written against
    the stdlib hierarchy keep working.
    """

    code = 51


class ScenarioError(InsaneError, ValueError):
    """A scenario document failed validation or could not be compiled.

    Carries ``path`` — the dotted location inside the document
    (``"workload.size"``, ``"faults[2].kind"``) — so a bad corpus file
    points at the offending line, not at a stack trace.  Also a
    ``ValueError`` for callers treating specs as plain bad input.
    """

    code = 60

    def __init__(self, message, path=None, source=None):
        location = ""
        if source and path:
            location = "%s: %s: " % (source, path)
        elif path:
            location = "%s: " % (path,)
        elif source:
            location = "%s: " % (source,)
        super().__init__("%s%s" % (location, message))
        self.path = path
        self.source = source


class TopologyError(InsaneError, ValueError):
    """A topology is mis-wired: an unreachable host, a switch table that
    routes a destination back out its ingress port, or a generated-fabric
    spec that cannot be built.

    Raised at *bind/build time* — a frame silently dropped at runtime
    because a forwarding table never learned its destination is a wiring
    bug, not traffic, and must fail the build loudly instead.  Also a
    ``ValueError`` so callers validating specs generically keep working.
    """

    code = 61


class LoadgenError(InsaneError):
    """A closed-loop load-generation run could not produce trusted stats."""

    code = 70


class StabilityError(LoadgenError):
    """No acceptable stable measurement region was found.

    Raised by the windowed measurement layer when the warmup/stable
    window plan yields too few windows that agree with each other (or no
    completions at all) — accepting such a run would report noise as a
    steady-state figure.
    """

    code = 71


class InteractiveLawError(LoadgenError):
    """The interactive response-time law failed inside a stable window.

    Every closed-loop run self-checks ``|N - X*(R+Z)| / N <= epsilon``
    per accepted window; a violation means the simulator's own
    accounting (clients, throughput, response and think times) is
    inconsistent and none of the run's numbers should be trusted.
    """

    code = 72


#: name -> paper-style integer code, the full error-code space of the API.
ERROR_CODES = {
    "INSANE_OK": INSANE_OK,
    "InsaneError": InsaneError.code,
    "SessionError": SessionError.code,
    "PoolExhaustedError": PoolExhaustedError.code,
    "BufferLifecycleError": BufferLifecycleError.code,
    "NoDatapathError": NoDatapathError.code,
    "QosValidationError": QosValidationError.code,
    "DatapathFailedError": DatapathFailedError.code,
    "FailoverError": FailoverError.code,
    "FaultInjectionError": FaultInjectionError.code,
    "TransferError": TransferError.code,
    "UtcpError": UtcpError.code,
    "ScenarioError": ScenarioError.code,
    "TopologyError": TopologyError.code,
    "LoadgenError": LoadgenError.code,
    "StabilityError": StabilityError.code,
    "InteractiveLawError": InteractiveLawError.code,
}
