"""Exceptions raised by the INSANE middleware."""


class InsaneError(RuntimeError):
    """Base class for middleware-level errors."""


class SessionError(InsaneError):
    """Raised on API misuse: closed sessions, foreign buffers, etc."""


class PoolExhaustedError(InsaneError):
    """Raised when a memory pool has no free slots and the caller asked
    for a non-blocking allocation."""


class NoDatapathError(InsaneError):
    """Raised when a QoS mapping strategy yields a datapath that is not
    available on the host and no fallback is permitted."""


class BufferLifecycleError(InsaneError):
    """Raised on double-release, use-after-release, or emit of a foreign
    buffer."""
