"""Packet schedulers: FIFO and the IEEE 802.1Qbv time-aware scheduler.

By default INSANE sends packets in FIFO order as soon as they are emitted.
Streams labelled time-sensitive are instead handled by a Time-Sensitive
Networking (TSN) scheduler implementing the 802.1Qbv time-aware shaper: a
cyclic *gate control list* opens and closes per-traffic-class gates, so
time-critical traffic transmits in protected windows with deterministic
latency regardless of best-effort load (paper §5.2/§5.3).
"""

from collections import deque

#: Traffic classes (a subset of the eight 802.1Q priorities).
CLASS_BEST_EFFORT = 0
CLASS_TIME_SENSITIVE = 6


def _stamp(item, key, now):
    """Record a lifecycle stamp on a traced packet.

    Packets carry ``trace is None`` unless tracing is on, so the cost with
    tracing off is one attribute load and a ``None`` check per item."""
    trace = getattr(item, "trace", None)
    if trace is not None:
        trace[key] = now


def _stamp_batch(batch, now):
    """Stamp ``sched_dequeue`` on a popped batch.

    Batches are homogeneous within a run (tracing is either on or off for
    the whole simulation), so checking the head is enough to skip the
    per-item loop entirely when tracing is off."""
    if batch and getattr(batch[0], "trace", None) is not None:
        for item in batch:
            trace = getattr(item, "trace", None)
            if trace is not None:
                trace["sched_dequeue"] = now


class FifoScheduler:
    """Send packets in emission order, immediately."""

    name = "fifo"

    def __init__(self):
        self._queue = deque()

    def __len__(self):
        return len(self._queue)

    def push(self, item, traffic_class=CLASS_BEST_EFFORT, now=0, flow="default"):
        _stamp(item, "sched_enqueue", now)
        self._queue.append(item)

    def pop_ready(self, now, max_items):
        """Items eligible for transmission at virtual time ``now``."""
        batch = []
        while self._queue and len(batch) < max_items:
            batch.append(self._queue.popleft())
        _stamp_batch(batch, now)
        return batch

    def next_ready_at(self, now):
        """Earliest time anything becomes eligible, or None when empty."""
        return now if self._queue else None


class GateControlList:
    """A cyclic 802.1Qbv gate schedule.

    ``entries`` is a list of ``(duration_ns, open_classes)`` executed in
    order, repeating every cycle.
    """

    def __init__(self, entries):
        if not entries:
            raise ValueError("gate control list needs at least one entry")
        self.entries = []
        offset = 0
        for duration, open_classes in entries:
            if duration <= 0:
                raise ValueError("gate entry duration must be positive")
            self.entries.append((offset, duration, frozenset(open_classes)))
            offset += duration
        self.cycle_ns = offset

    @classmethod
    def default(cls, cycle_ns=100_000, ts_fraction=0.3):
        """A simple two-window schedule: a protected time-sensitive window
        followed by a best-effort window."""
        ts_window = int(cycle_ns * ts_fraction)
        return cls(
            [
                (ts_window, {CLASS_TIME_SENSITIVE}),
                (cycle_ns - ts_window, {CLASS_BEST_EFFORT, CLASS_TIME_SENSITIVE}),
            ]
        )

    def is_open(self, traffic_class, now):
        phase = now % self.cycle_ns
        for offset, duration, open_classes in self.entries:
            if offset <= phase < offset + duration:
                return traffic_class in open_classes
        raise AssertionError("phase %r not covered by gate control list" % phase)

    def next_open_at(self, traffic_class, now):
        """The earliest time >= now at which the class's gate is open."""
        if self.is_open(traffic_class, now):
            return now
        phase = now % self.cycle_ns
        cycle_start = now - phase
        # scan this cycle and the next (the gate opens at least once per
        # cycle for any class present in some entry)
        for base in (cycle_start, cycle_start + self.cycle_ns):
            for offset, _duration, open_classes in self.entries:
                start = base + offset
                if traffic_class in open_classes and start >= now:
                    return start
        raise ValueError(
            "traffic class %r never opens in this gate control list" % traffic_class
        )


class TsnScheduler:
    """An 802.1Qbv time-aware scheduler over per-class FIFO queues.

    Higher traffic classes drain first within an open window, giving
    time-sensitive packets strict priority over best effort even when both
    gates are open.
    """

    name = "tsn"

    def __init__(self, gcl=None):
        self.gcl = gcl or GateControlList.default()
        self._queues = {}

    def __len__(self):
        return sum(len(queue) for queue in self._queues.values())

    def push(self, item, traffic_class=CLASS_BEST_EFFORT, now=0, flow="default"):
        _stamp(item, "sched_enqueue", now)
        self._queues.setdefault(traffic_class, deque()).append(item)

    def pop_ready(self, now, max_items):
        batch = []
        for traffic_class in sorted(self._queues, reverse=True):
            queue = self._queues[traffic_class]
            if not queue or not self.gcl.is_open(traffic_class, now):
                continue
            while queue and len(batch) < max_items:
                batch.append(queue.popleft())
            if len(batch) >= max_items:
                break
        _stamp_batch(batch, now)
        return batch

    def next_ready_at(self, now):
        earliest = None
        for traffic_class, queue in self._queues.items():
            if not queue:
                continue
            ready = self.gcl.next_open_at(traffic_class, now)
            if earliest is None or ready < earliest:
                earliest = ready
        return earliest


class PriorityScheduler:
    """Strict priority across traffic classes, FIFO within a class.

    Unlike :class:`TsnScheduler` there are no gates: higher classes always
    preempt lower ones, so best-effort traffic can starve under sustained
    high-priority load (the classic trade-off the 802.1Qbv gates avoid).
    """

    name = "priority"

    def __init__(self):
        self._queues = {}

    def __len__(self):
        return sum(len(queue) for queue in self._queues.values())

    def push(self, item, traffic_class=CLASS_BEST_EFFORT, now=0, flow="default"):
        _stamp(item, "sched_enqueue", now)
        self._queues.setdefault(traffic_class, deque()).append(item)

    def pop_ready(self, now, max_items):
        batch = []
        for traffic_class in sorted(self._queues, reverse=True):
            queue = self._queues[traffic_class]
            while queue and len(batch) < max_items:
                batch.append(queue.popleft())
            if len(batch) >= max_items:
                break
        _stamp_batch(batch, now)
        return batch

    def next_ready_at(self, now):
        return now if len(self) else None


class DrrScheduler:
    """Deficit round robin across flows: byte-level fairness.

    Each flow (keyed by the pusher, e.g. an application id) owns a queue
    and a deficit counter replenished by ``quantum`` bytes per round —
    a flooding tenant cannot starve a paced one sharing the datapath.
    Items must expose ``payload_len`` (packets do); anything else counts
    as one quantum's worth.
    """

    name = "drr"

    def __init__(self, quantum=4096):
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.quantum = quantum
        self._queues = {}
        self._deficits = {}
        self._active = deque()

    def __len__(self):
        return sum(len(queue) for queue in self._queues.values())

    def push(self, item, traffic_class=CLASS_BEST_EFFORT, now=0, flow="default"):
        _stamp(item, "sched_enqueue", now)
        queue = self._queues.get(flow)
        if queue is None:
            queue = deque()
            self._queues[flow] = queue
            self._deficits[flow] = 0
        if not queue and flow not in self._active:
            self._active.append(flow)
        queue.append(item)

    @staticmethod
    def _size_of(item):
        return getattr(item, "payload_len", None) or 1

    def pop_ready(self, now, max_items):
        batch = []
        if not self._active:
            return batch
        rounds_without_progress = 0
        while self._active and len(batch) < max_items:
            flow = self._active[0]
            queue = self._queues[flow]
            self._deficits[flow] += self.quantum
            progressed = False
            while queue and len(batch) < max_items:
                size = self._size_of(queue[0])
                if size > self._deficits[flow]:
                    break
                self._deficits[flow] -= size
                batch.append(queue.popleft())
                progressed = True
            self._active.rotate(-1)
            if not queue:
                self._deficits[flow] = 0
                self._active.remove(flow)
            if progressed:
                rounds_without_progress = 0
            else:
                rounds_without_progress += 1
                if rounds_without_progress > len(self._active):
                    break  # every remaining head is larger than one quantum
        _stamp_batch(batch, now)
        return batch

    def next_ready_at(self, now):
        return now if len(self) else None


def scheduler_for(time_sensitive, gcl=None, best_effort="fifo"):
    """Factory used by the runtime when binding a stream's datapath."""
    if time_sensitive:
        return TsnScheduler(gcl)
    if best_effort == "fifo":
        return FifoScheduler()
    if best_effort == "drr":
        return DrrScheduler()
    if best_effort == "priority":
        return PriorityScheduler()
    raise ValueError("unknown best-effort scheduler %r" % (best_effort,))
