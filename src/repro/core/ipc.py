"""Lock-free token rings between the client library and the runtime.

The client library and the runtime live in separate processes and exchange
*tokens* — slot ids plus a small header — over bounded SPSC rings mapped in
shared memory (paper §5.3, Fig. 4).  The simulated ring is a bounded
:class:`~repro.simnet.Store`; the CPU cost of one ring crossing is the
``insane_ipc`` stage, charged half at the enqueuing side and half at the
dequeuing side so that the cost lands on the correct simulated core.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.simnet import Counter, Store, Timeout


@dataclass
class Token:
    """One entry of a token ring.

    ``slot_id`` identifies the payload slot in the runtime's shared pool
    (the processes never exchange pointers); ``buffer`` is the simulation's
    resolved handle so tests can verify zero-copy behaviour.
    """

    slot_id: int
    length: int
    stream: str
    channel: int
    emit_id: Optional[object] = None
    source_ip: Optional[str] = None
    buffer: object = None
    meta: dict = field(default_factory=dict)

    @property
    def key(self):
        from repro.core.channel import ChannelKey

        return ChannelKey(self.stream, self.channel)


class TokenRing:
    """A bounded SPSC ring of :class:`Token`."""

    def __init__(self, sim, host, capacity, name):
        self.sim = sim
        self.host = host
        self.store = Store(sim, capacity=capacity, name=name)
        self.name = name
        self.enqueued = Counter(name + ".enqueued")
        self.rejected = Counter(name + ".rejected")

    def __len__(self):
        return len(self.store)

    @property
    def is_empty(self):
        return self.store.is_empty

    def half_cost(self, burst=1):
        """The per-side CPU cost of one ring crossing."""
        return Timeout(self.host.jitter(self.host.profile.stage("insane_ipc").cost(0, burst=burst) / 2.0))

    def try_enqueue(self, token):
        """Non-blocking enqueue; returns False when the ring is full."""
        if self.store.try_put(token):
            self.enqueued.increment()
            return True
        self.rejected.increment()
        return False

    def enqueue_effect(self, token):
        """A ``Put`` effect that blocks the producer while the ring is full
        (backpressure rather than silent loss on the client side)."""
        from repro.simnet import Put

        self.enqueued.increment()
        return Put(self.store, token)

    def try_dequeue(self):
        ok, token = self.store.try_get()
        return token if ok else None

    def dequeue_effect(self):
        from repro.simnet import Get

        return Get(self.store)

    def drain(self, max_items):
        """Dequeue up to ``max_items`` tokens without blocking."""
        tokens = []
        while len(tokens) < max_items:
            ok, token = self.store.try_get()
            if not ok:
                break
            tokens.append(token)
        return tokens
