"""Lock-free token rings between the client library and the runtime.

The client library and the runtime live in separate processes and exchange
*tokens* — slot ids plus a small header — over bounded SPSC rings mapped in
shared memory (paper §5.3, Fig. 4).  The simulated ring is a bounded
:class:`~repro.simnet.Store`; the CPU cost of one ring crossing is the
``insane_ipc`` stage, charged half at the enqueuing side and half at the
dequeuing side so that the cost lands on the correct simulated core.
"""

from repro.core.channel import ChannelKey
from repro.simnet import Counter, Get, Put, Store, Timeout


class Token:
    """One entry of a token ring.

    ``slot_id`` identifies the payload slot in the runtime's shared pool
    (the processes never exchange pointers); ``buffer`` is the simulation's
    resolved handle so tests can verify zero-copy behaviour.

    Three tokens are built per delivered message (emit, dispatch,
    per-sink delivery), so this is a plain ``__slots__`` class rather
    than a dataclass.
    """

    __slots__ = (
        "slot_id", "length", "stream", "channel",
        "emit_id", "source_ip", "buffer", "meta",
    )

    def __init__(self, slot_id, length, stream, channel,
                 emit_id=None, source_ip=None, buffer=None, meta=None):
        self.slot_id = slot_id
        self.length = length
        self.stream = stream
        self.channel = channel
        self.emit_id = emit_id
        self.source_ip = source_ip
        self.buffer = buffer
        self.meta = {} if meta is None else meta

    @property
    def key(self):
        return ChannelKey(self.stream, self.channel)

    def __repr__(self):
        return "Token(slot=%r, len=%r, %s:%s)" % (
            self.slot_id, self.length, self.stream, self.channel
        )


class TokenRing:
    """A bounded SPSC ring of :class:`Token`."""

    def __init__(self, sim, host, capacity, name):
        self.sim = sim
        self.host = host
        self.store = Store(sim, capacity=capacity, name=name)
        self.name = name
        self._half_ns = host.profile.stage("insane_ipc").cost(0, burst=1) / 2.0
        #: pre-overhaul behaviour: recompute the stage cost per call
        self._legacy = getattr(sim, "legacy_stack", False)
        self.enqueued = Counter(name + ".enqueued")
        self.rejected = Counter(name + ".rejected")

    def __len__(self):
        return len(self.store)

    @property
    def is_empty(self):
        return self.store.is_empty

    def half_cost(self, burst=1):
        """The per-side CPU cost of one ring crossing."""
        if burst == 1 and not self._legacy:
            return Timeout(self.host.jitter(self._half_ns))
        return Timeout(self.host.jitter(self.host.profile.stage("insane_ipc").cost(0, burst=burst) / 2.0))

    def try_enqueue(self, token):
        """Non-blocking enqueue; returns False when the ring is full."""
        if self.store.try_put(token):
            self.enqueued.value += 1
            return True
        self.rejected.value += 1
        return False

    def enqueue_effect(self, token):
        """A ``Put`` effect that blocks the producer while the ring is full
        (backpressure rather than silent loss on the client side)."""
        if self._legacy:
            # verbatim pre-overhaul path: per-call import + increment()
            from repro.simnet import Put as PutEffect

            self.enqueued.value += 1
            return PutEffect(self.store, token)
        self.enqueued.value += 1
        return Put(self.store, token)

    def try_dequeue(self):
        ok, token = self.store.try_get()
        return token if ok else None

    def dequeue_effect(self):
        return Get(self.store)

    def drain(self, max_items):
        """Dequeue up to ``max_items`` tokens without blocking."""
        tokens = []
        while len(tokens) < max_items:
            ok, token = self.store.try_get()
            if not ok:
                break
            tokens.append(token)
        return tokens
