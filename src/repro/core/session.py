"""The INSANE client library (paper §5.1, Fig. 2).

A :class:`Session` is one application's connection to the local runtime.
All data-plane operations are generators: they run inside the application's
simulated process so their CPU cost lands on the right core, and they are
asynchronous by design to keep the zero-copy path free of hidden copies.

Typical source-side use::

    session = Session(runtime, "producer")
    stream = session.create_stream(QosPolicy.fast())
    source = session.create_source(stream, channel=4)

    def app(sim):
        buffer = session.get_buffer(source, 64)
        buffer.write(b"..." )
        emit_id = yield from session.emit_data(source, buffer)

and sink-side::

    sink = session.create_sink(stream, channel=4)
    delivery = yield from session.consume_data(sink)          # blocking
    ... read delivery.payload() ...
    session.release_buffer(sink, delivery)

Sessions, streams, sources, and sinks are context managers; the idiomatic
lifecycle is ``with``-scoped (close is idempotent, so explicit ``close()``
calls remain valid)::

    with Session(runtime, "producer") as session:
        with session.create_stream(QosPolicy.fast()) as stream:
            source = session.create_source(stream, channel=4)
            ...
"""

import itertools

from repro.core.channel import Delivery, Sink, Source, Stream
from repro.core.errors import (
    DatapathFailedError,
    PoolExhaustedError,
    SessionError,
)
from repro.core.ipc import Token
from repro.core.outcomes import EmitOutcome
from repro.core.qos import QosPolicy, resolve_mapping
from repro.core.runtime import INSANE_HEADER_BYTES
from repro.simnet import Get, Signal, Timeout, TimeoutAt, Wait

_session_ids = itertools.count(1)


class Session:
    """An application's session with the local INSANE runtime."""

    def __init__(self, runtime, name=None, slot_quota=None):
        self.runtime = runtime
        self.sim = runtime.sim
        self.app_id = name or ("app%d" % next(_session_ids))
        self.slot_quota = slot_quota
        self.streams = []
        self.closed = False
        self._credentials = {}
        # fast-engine marker: consume_data folds its post-receive sleep
        # into one exact-instant wake-up only when a zero-delay lane
        # exists (i.e. the overhauled engine is driving)
        self._lane = getattr(runtime.sim, "_lane", None)
        # pre-overhaul client-library behaviour (per-call imports, property
        # chains, increment() calls) — only the perf baseline sets this
        if getattr(runtime.sim, "legacy_stack", False):
            self.emit_data = self._emit_data_legacy
            self.consume_data = self._consume_data_legacy
            self.get_buffer_wait = self._get_buffer_wait_legacy
        runtime.attach_session(self)

    def present(self, credential):
        """Present an access credential for later endpoint creations."""
        self._credentials[credential.stream] = credential
        return self

    def _authorize(self, stream_name, right):
        controller = self.runtime.config.access_controller
        if controller is None:
            return
        controller.enforce(
            self._credentials.get(stream_name), self.app_id, stream_name, right
        )

    # -- stream management ----------------------------------------------------

    def create_stream(self, policy=None, name="default"):
        """Open a stream, mapping its QoS onto an available datapath."""
        self._check_open()
        policy = policy or QosPolicy()
        decision = resolve_mapping(
            policy,
            self.runtime.available_datapaths(),
            strategy=self.runtime.config.mapping_strategy,
        )
        if decision.warning:
            self.runtime.warn(decision.warning)
        binding = self.runtime.ensure_binding(decision.datapath)
        stream = Stream(self, name, policy, decision, binding)
        self.streams.append(stream)
        return stream

    def close_stream(self, stream):
        stream.close()
        if stream in self.streams:
            self.streams.remove(stream)

    # -- endpoints -----------------------------------------------------------------

    def create_source(self, stream, channel):
        self._check_open()
        self._check_stream(stream)
        from repro.core.security import RIGHT_PUBLISH

        self._authorize(stream.name, RIGHT_PUBLISH)
        source = Source(self, stream, channel)
        stream.sources.append(source)
        return source

    def create_sink(self, stream, channel, callback=None):
        self._check_open()
        self._check_stream(stream)
        from repro.core.security import RIGHT_SUBSCRIBE

        self._authorize(stream.name, RIGHT_SUBSCRIBE)
        endpoint = self.runtime.register_sink_key(
            stream.name, channel, self.app_id, datapath=stream.binding.name
        )
        sink = Sink(self, stream, channel, endpoint, callback=callback)
        stream.sinks.append(sink)
        if callback is not None:
            self.sim.process(self._callback_loop(sink), name=self.app_id + ".cb")
        return sink

    def close_source(self, source):
        source.close()

    def close_sink(self, sink):
        sink.close()

    def outstanding_window(self, limit):
        """A bounded in-flight request window scoped to this session.

        Closed-loop clients acquire one slot per emit and release it when
        the matching response is consumed; ``acquire`` blocks while
        ``limit`` requests are outstanding.  See
        :class:`repro.core.window.OutstandingWindow`.
        """
        self._check_open()
        from repro.core.window import OutstandingWindow

        return OutstandingWindow(self, limit)

    # -- source data plane -------------------------------------------------------------

    def get_buffer(self, source, size):
        """Borrow a zero-copy buffer from the runtime's pool.

        Raises :class:`PoolExhaustedError` when no slot is free — callers
        that prefer to wait should retry after consuming/releasing.
        """
        self._check_open()
        if source.closed:
            raise SessionError("source is closed")
        self.runtime.frame_policy.validate(size + INSANE_HEADER_BYTES)
        return self.runtime.memory.alloc_for(self.app_id, size)

    def get_buffer_wait(self, source, size):
        """Like :meth:`get_buffer`, but blocks until a slot frees up.

        Generator — use ``buffer = yield from session.get_buffer_wait(...)``.
        """
        self._check_open()
        if source.closed:
            raise SessionError("source is closed")
        self.runtime.frame_policy.validate(size + INSANE_HEADER_BYTES)
        try:
            return self.runtime.memory.alloc_for(self.app_id, size)
        except PoolExhaustedError:
            signal = Signal(self.sim)
            self.runtime.memory.alloc_waiter_for(
                self.app_id, lambda buffer, exc: signal.succeed(buffer)
            )
            buffer = yield Wait(signal)
            return buffer

    def _get_buffer_wait_legacy(self, source, size):
        """Pre-overhaul blocking allocation, verbatim (perf baseline)."""
        from repro.core.errors import PoolExhaustedError
        from repro.simnet import Signal, Wait

        self._check_open()
        if source.closed:
            raise SessionError("source is closed")
        self.runtime.frame_policy.validate(size + INSANE_HEADER_BYTES)
        try:
            return self.runtime.memory.alloc_for(self.app_id, size)
        except PoolExhaustedError:
            signal = Signal(self.sim)
            self.runtime.memory.alloc_waiter_for(
                self.app_id, lambda buffer, exc: signal.succeed(buffer)
            )
            buffer = yield Wait(signal)
            return buffer

    def emit_data(self, source, buffer, length=None):
        """Emit a buffer on the source's channel; returns the emit id.

        After this call the buffer belongs to the middleware: writing to it
        is an error (no after-write protection, paper §5.1).
        """
        if self.closed:
            raise SessionError("session %s is closed" % self.app_id)
        if source.closed:
            raise SessionError("source is closed")
        stream = source.stream
        if stream.failed:
            raise DatapathFailedError(
                "stream %s: datapath failed and no surviving datapath "
                "satisfies its policy" % stream.name
            )
        if length is None:
            length = buffer.length
        if length > len(buffer.view):
            raise SessionError("emit length exceeds buffer capacity")
        buffer.frozen = True  # inline Buffer.freeze(): no-after-write
        runtime = self.runtime
        runtime.memory.transfer_ownership(self.app_id, buffer)
        source._next_emit_id = next_id = source._next_emit_id + 1
        emit_id = (self.app_id, id(source), next_id)
        meta = {"app": self.app_id}
        if stream.time_sensitive:
            meta["time_sensitive"] = True
        if stream.degraded:
            meta["degraded"] = True
        if runtime.config.trace:
            meta["emit_ns"] = self.sim.now
        tracer = runtime.tracer
        if tracer is not None:
            # open the root lifecycle record; egress bindings fork one
            # child per wire packet off it in _build_packet
            meta["obs"] = tracer.begin(
                self.sim.now,
                stream=stream.name,
                channel=source.channel,
                size=length,
                datapath=stream.binding.name,
                host=runtime.host.name,
                app=self.app_id,
            )
        token = Token(
            buffer.slot_id,
            length,
            stream.name,
            source.channel,
            emit_id,
            runtime.host.ip,
            buffer,
            meta,
        )
        ring = source._ring
        if ring is None:
            source._ring = ring = stream.binding.ring_for(self.app_id)
        yield ring.half_cost()
        yield ring.enqueue_effect(token)
        source.emitted.value += 1
        return emit_id

    def _emit_data_legacy(self, source, buffer, length=None):
        """Pre-overhaul emit path, verbatim (perf baseline)."""
        from repro.core.ipc import Token

        self._check_open()
        if source.closed:
            raise SessionError("source is closed")
        if length is None:
            length = buffer.length
        if length > buffer.capacity:
            raise SessionError("emit length exceeds buffer capacity")
        buffer.freeze()
        self.runtime.memory.transfer_ownership(self.app_id, buffer)
        emit_id = (self.app_id, id(source), source.next_emit_id())
        token = Token(
            slot_id=buffer.slot_id,
            length=length,
            stream=source.stream.name,
            channel=source.channel,
            emit_id=emit_id,
            source_ip=self.runtime.host.ip,
            buffer=buffer,
        )
        token.meta["app"] = self.app_id
        if source.stream.time_sensitive:
            token.meta["time_sensitive"] = True
        if self.runtime.config.trace:
            token.meta["emit_ns"] = self.sim.now
        binding = source.stream.binding
        ring = binding.ring_for(self.app_id)
        yield ring.half_cost()
        yield ring.enqueue_effect(token)
        source.emitted.value += 1
        return emit_id

    def check_emit_outcome(self, source, emit_id):
        """Outcome of a previous emit, as an :class:`EmitOutcome`.

        The enum's values compare equal to the historical plain strings
        (``"sent"``, ``"pending"``, ...); failover re-maps report
        :attr:`EmitOutcome.DEGRADED` for emits routed over a fallback
        datapath.
        """
        return EmitOutcome(self.runtime.emit_outcome(emit_id))

    # -- sink data plane -----------------------------------------------------------------

    def data_available(self, sink):
        return len(sink.ring) > 0

    def consume_data(self, sink, blocking=True, extra_ns=0.0):
        """Consume the next delivery; returns None immediately when
        non-blocking and no data is present.

        ``extra_ns`` models post-receive application processing time: the
        sink sleeps that much longer before the call returns.  On the
        overhauled engine the IPC charge and the processing sleep are
        fused into a single exact-instant wake-up (one scheduler
        round-trip instead of two, counter parity kept); the wake instant
        and the jitter draw are bit-identical to the two-event form.
        """
        if self.closed:
            raise SessionError("session %s is closed" % self.app_id)
        if sink.closed:
            raise SessionError("sink is closed")
        if blocking:
            token = yield Get(sink._endpoint_ring)
        else:
            ok, token = sink._endpoint_ring.try_get()
            if not ok:
                return None
        if extra_ns:
            effect = sink._ipc_half()  # jitter drawn now, as unfused
            sim = self.sim
            if self._lane is not None and sim.observer is None:
                target = sim.now + effect.delay  # unfused first wake-up
                yield TimeoutAt(target + extra_ns)
                sim._executed += 1  # parity with the elided second event
            else:
                yield effect
                yield Timeout(extra_ns)
        else:
            yield sink._ipc_half()
        sink.received.value += 1
        if self.runtime.tracer is not None:
            self._finish_trace(token, sink)
        return self._delivery_from(token)

    def _finish_trace(self, token, sink):
        """Close the lifecycle record delivered with ``token`` (network
        deliveries carry the packet child as ``meta["trace"]``, local ones
        the root as ``meta["obs"]``; plain-dict traces have no finish)."""
        meta = token.meta
        record = meta.get("trace")
        if record is None:
            record = meta.get("obs")
        finish = getattr(record, "finish", None)
        if finish is not None:
            finish(self.sim.now, sink)

    def _consume_data_legacy(self, sink, blocking=True):
        """Pre-overhaul consume path, verbatim (perf baseline)."""
        self._check_open()
        if sink.closed:
            raise SessionError("sink is closed")
        from repro.simnet import Get

        if blocking:
            token = yield Get(sink.ring)
        else:
            ok, token = sink.ring.try_get()
            if not ok:
                return None
        yield sink.stream.binding.ipc_half_cost()
        sink.received.value += 1
        return self._delivery_from(token)

    def release_buffer(self, sink, delivery):
        """Return a consumed buffer to the middleware."""
        buffer = delivery.buffer if isinstance(delivery, Delivery) else delivery
        self.runtime.memory.release_for(self.app_id, buffer)

    # -- lifecycle ------------------------------------------------------------------------

    def close(self):
        """Close the session, reclaiming every leaked slot.  Idempotent:
        a second close returns 0 and touches nothing."""
        if self.closed:
            return 0
        for stream in list(self.streams):
            self.close_stream(stream)
        self.closed = True
        return self.runtime.detach_session(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- internals -------------------------------------------------------------------------

    def _delivery_from(self, token):
        return Delivery(
            buffer=token.buffer,
            length=token.length,
            channel=token.channel,
            stream=token.stream,
            source_ip=token.source_ip,
            recv_ns=token.meta.get("recv_ns", self.sim.now),
            meta=token.meta,
        )

    def _callback_loop(self, sink):
        while not sink.closed and not self.closed:
            token = yield Get(sink.ring)
            yield sink.stream.binding.ipc_half_cost()
            sink.received.value += 1
            if self.runtime.tracer is not None:
                self._finish_trace(token, sink)
            delivery = self._delivery_from(token)
            keep = sink.callback(delivery)
            if keep is not True:
                self.release_buffer(sink, delivery)

    def _check_open(self):
        if self.closed:
            raise SessionError("session %s is closed" % self.app_id)

    def _check_stream(self, stream):
        if stream.closed:
            raise SessionError("stream %s is closed" % stream.name)
        if stream.session is not self:
            raise SessionError("stream belongs to another session")
