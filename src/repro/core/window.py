"""Bounded outstanding-request windows for closed-loop clients.

A closed-loop client keeps at most ``limit`` requests in flight: it
*acquires* a window slot before every emit and *releases* it when the
matching response is consumed.  The window is the session-level hook the
load generator (:mod:`repro.loadgen`) drives — the accounting lives here,
next to the client library, so any application written against the INSANE
API can bound its own outstanding work the same way.

Slots hand over FIFO: a blocked ``acquire`` is woken by the next
``release`` and inherits its slot directly (``in_flight`` never dips),
so the bound is exact at every instant and wake-up order is
deterministic.
"""

from collections import deque

from repro.core.errors import SessionError
from repro.simnet import Signal, Wait


class OutstandingWindow:
    """A counting bound on in-flight requests, FIFO hand-off on release.

    Use from inside a simulated process::

        window = session.outstanding_window(limit=4)
        yield from window.acquire()     # blocks while 4 are in flight
        ... emit ...
        # later, when the response is consumed:
        window.release()
    """

    __slots__ = ("session", "sim", "limit", "in_flight", "peak",
                 "acquired_total", "blocked_total", "_waiters")

    def __init__(self, session, limit):
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise SessionError(
                "outstanding window limit must be an integer >= 1, got %r"
                % (limit,)
            )
        self.session = session
        self.sim = session.sim
        self.limit = limit
        self.in_flight = 0
        #: high-water mark of concurrently outstanding requests.
        self.peak = 0
        #: total successful acquires (== requests admitted).
        self.acquired_total = 0
        #: acquires that had to block because the window was full.
        self.blocked_total = 0
        self._waiters = deque()

    def acquire(self):
        """Take one slot; blocks (generator) while the window is full.

        Use ``yield from window.acquire()``.
        """
        if self.in_flight < self.limit:
            self.in_flight += 1
        else:
            self.blocked_total += 1
            signal = Signal(self.sim)
            self._waiters.append(signal)
            # the releasing side hands its slot straight to us, so
            # in_flight stays constant across the hand-off
            yield Wait(signal)
        self.acquired_total += 1
        if self.in_flight > self.peak:
            self.peak = self.in_flight
        return self.in_flight

    def release(self):
        """Return one slot; wakes the oldest blocked ``acquire`` if any."""
        if self.in_flight < 1:
            raise SessionError(
                "outstanding window released more slots than were acquired"
            )
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self.in_flight -= 1

    @property
    def available(self):
        """Slots free right now."""
        return self.limit - self.in_flight

    def __len__(self):
        return self.in_flight

    def __repr__(self):
        return "OutstandingWindow(limit=%d, in_flight=%d, peak=%d)" % (
            self.limit, self.in_flight, self.peak,
        )
