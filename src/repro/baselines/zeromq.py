"""A ZeroMQ-like MoM over UDP (paper §7.1 comparison).

ZeroMQ's UDP (Radio/Dish) path funnels every message through internal
pipes between the application thread and a shared I/O thread; the paper
measures this adding ~20 us over Cyclone DDS and excludes it from the
throughput plot for instability.  We model the pipeline cost on the
receive side and a smaller enqueue cost on send, with high variance.
"""

from collections import defaultdict

from repro.datapaths import KernelUdpDatapath
from repro.netstack import Packet
from repro.simnet import Counter, Get, Store, Timeout

ZMQ_PORT = 7500


class ZmqContext:
    """Shared endpoint registry (stands in for connect/bind addressing)."""

    def __init__(self):
        self.dishes = defaultdict(set)  # group -> {node}


class ZmqNode:
    """One Radio/Dish participant on one host."""

    def __init__(self, host, context, jitter_sigma=0.25):
        self.host = host
        self.sim = host.sim
        self.context = context
        self.socket = KernelUdpDatapath.get(host).socket(ZMQ_PORT, blocking=False)
        self._dish_queues = defaultdict(lambda: Store(self.sim))
        self._callbacks = {}
        self.received = Counter("zmq.received")
        # the paper observes unstable performance; model with wide jitter
        self.jitter_sigma = jitter_sigma
        self.sim.process(self._io_thread(), name=host.name + ".zmq.io")

    def radio_send(self, group, size, data=None):
        """Send one message to every dish joined to ``group`` (generator)."""
        # enqueue onto the application->io pipe (small, sender side)
        yield Timeout(self.host.jitter(400.0))
        for node in self.context.dishes.get(group, ()):
            if node is self:
                continue
            packet = Packet(
                self.host.ip,
                node.host.ip,
                ZMQ_PORT,
                ZMQ_PORT,
                payload=data,
                payload_len=size if data is None else None,
            )
            packet.meta["zmq_group"] = group
            yield from self.socket.send(packet)

    def dish_join(self, group, callback):
        """Join a group; ``callback(group, packet)`` per message."""
        self.context.dishes[group].add(self)
        self._callbacks[group] = callback
        self.sim.process(self._dish_loop(group), name="zmq.dish")

    def _io_thread(self):
        while True:
            batch = yield from self.socket.recv_many(32)
            cost = 0.0
            for packet in batch:
                pipeline = self.host.stage_cost("zmq_pipeline", packet.payload_len, burst=len(batch))
                pipeline *= max(0.2, self.sim.rng.gauss(1.0, self.jitter_sigma))
                cost += pipeline
            yield Timeout(cost)
            for packet in batch:
                group = packet.meta.get("zmq_group")
                if group in self._callbacks:
                    self._dish_queues[group].try_put(packet)

    def _dish_loop(self, group):
        callback = self._callbacks[group]
        queue = self._dish_queues[group]
        while True:
            packet = yield Get(queue)
            self.received.value += 1
            callback(group, packet)
