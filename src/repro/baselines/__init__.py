"""Baseline systems the paper compares INSANE against.

* :mod:`repro.baselines.raw_udp` — UDP-socket benchmark app (blocking and
  non-blocking receive);
* :mod:`repro.baselines.raw_dpdk` — native DPDK benchmark app;
* :mod:`repro.baselines.demikernel` — Demikernel library OS with its Catnap
  (kernel sockets) and Catnip (DPDK) libraries;
* :mod:`repro.baselines.dds` — a Cyclone-DDS-like decentralized MoM over
  UDP (RTPS-style serialization, blocking receiver event loop);
* :mod:`repro.baselines.zeromq` — a ZeroMQ-like MoM over UDP (internal
  pipeline queues and an I/O thread);
* :mod:`repro.baselines.sendfile` — kernel sender-side zero-copy streaming.

Each module exposes small benchmark "applications" with the same driver
interface so the harness in :mod:`repro.bench` can swap systems freely.
"""

from repro.baselines.raw_udp import UdpBenchApp
from repro.baselines.raw_dpdk import DpdkBenchApp
from repro.baselines.demikernel import DemikernelApp

__all__ = ["DemikernelApp", "DpdkBenchApp", "UdpBenchApp"]
