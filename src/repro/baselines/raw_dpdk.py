"""The native DPDK benchmark application (paper §6.2, "Raw DPDK").

The application owns the DPDK context directly: it busy-polls its own
receive queue, drains bursts, and releases mbufs itself — the maximum
performance (and maximum code complexity) configuration of Table 3.
"""

from repro.datapaths import DpdkDatapath
from repro.netstack import Packet
from repro.simnet import RateMeter, Tally


class DpdkBenchApp:
    """Ping-pong and streaming drivers over native DPDK."""

    def __init__(self, testbed, port=7001):
        self.testbed = testbed
        self.sim = testbed.sim
        self.port = port
        self.client_host = testbed.hosts[0]
        self.server_host = testbed.hosts[1]
        self.client_dp = DpdkDatapath(self.client_host)
        self.server_dp = DpdkDatapath(self.server_host)
        self.client_queue = self.client_dp.open_port(port)
        self.server_queue = self.server_dp.open_port(port)

    # -- ping-pong ------------------------------------------------------------

    def pingpong(self, rounds, size):
        sim = self.sim
        rtts = Tally("raw_dpdk_rtt")

        def client():
            for _ in range(rounds):
                start = sim.now
                yield from self.client_dp.send(
                    self._packet(self.client_host, self.server_host, size)
                )
                packets = yield from self.client_dp.recv_burst(self.client_queue)
                for packet in packets:
                    DpdkDatapath.release_rx(packet)
                rtts.record(sim.now - start)

        def server():
            while True:
                packets = yield from self.server_dp.recv_burst(self.server_queue)
                for packet in packets:
                    DpdkDatapath.release_rx(packet)
                    yield from self.server_dp.send(
                        self._packet(self.server_host, self.client_host, packet.payload_len)
                    )

        sim.process(server(), name="dpdk.server")
        sim.process(client(), name="dpdk.client")
        sim.run()
        return rtts

    # -- streaming throughput -------------------------------------------------

    def stream(self, messages, size, burst=32):
        sim = self.sim
        meter = RateMeter("raw_dpdk_stream")

        def sender():
            remaining = messages
            while remaining:
                count = min(burst, remaining)
                packets = [
                    self._packet(self.client_host, self.server_host, size)
                    for _ in range(count)
                ]
                yield from self.client_dp.send_many(packets)
                remaining -= count

        def receiver():
            received = 0
            while received < messages:
                packets = yield from self.server_dp.recv_burst(self.server_queue, burst)
                for packet in packets:
                    meter.record(sim.now, size)
                    DpdkDatapath.release_rx(packet)
                received += len(packets)

        sim.process(receiver(), name="dpdk.rx")
        sim.process(sender(), name="dpdk.tx")
        sim.run()
        return meter

    def _packet(self, src, dst, size):
        return Packet(src.ip, dst.ip, self.port, self.port, payload_len=size)
