"""A Cyclone-DDS-like decentralized MoM over UDP (paper §7.1 comparison).

Models the cost structure that separates DDS from LUNAR MoM in Fig. 9:
RTPS/CDR (de)serialization on both ends and a dedicated receiver event-loop
thread that must be woken for incoming data (the paper: "comparable to
systems that use blocking sockets in their receiver thread, although with
higher variability").  Transport is plain kernel UDP, as the paper
configures Cyclone.
"""

from collections import defaultdict

from repro.datapaths import KernelUdpDatapath
from repro.netstack import Packet
from repro.simnet import Counter, Get, Store, Timeout

DDS_PORT = 7400


class DdsDomain:
    """Shared discovery state of one DDS domain (out-of-band, like SPDP)."""

    def __init__(self):
        self.nodes = []
        self.subscriptions = defaultdict(set)  # topic -> {node}

    def register(self, node):
        self.nodes.append(node)

    def subscribers(self, topic, exclude=None):
        return [node for node in self.subscriptions.get(topic, ()) if node is not exclude]


class CycloneDdsNode:
    """One DDS participant on one host."""

    def __init__(self, host, domain, jitter_sigma=0.08):
        self.host = host
        self.sim = host.sim
        self.domain = domain
        self.socket = KernelUdpDatapath.get(host).socket(DDS_PORT, blocking=False)
        # the receiver event loop hands samples to reader queues
        self._reader_queues = defaultdict(lambda: Store(self.sim))
        self._callbacks = {}
        self.samples_received = Counter("dds.samples")
        # Cyclone shows "higher variability" (paper §7.1): extra jitter on
        # the event-loop wake-up
        self.jitter_sigma = jitter_sigma
        domain.register(self)
        self.sim.process(self._event_loop(), name=host.name + ".dds.evloop")

    # -- publish ---------------------------------------------------------------

    def publish(self, topic, size, data=None):
        """Serialize and send one sample to every subscriber (generator)."""
        if data is not None:
            size = len(data)
        yield Timeout(self.host.stage_cost("dds_serialize", size))
        for node in self.domain.subscribers(topic, exclude=self):
            packet = Packet(
                self.host.ip,
                node.host.ip,
                DDS_PORT,
                DDS_PORT,
                payload=data,
                payload_len=size if data is None else None,
            )
            packet.meta["dds_topic"] = topic
            yield from self.socket.send(packet)
        # local subscribers are delivered through the same reader queues
        if self in self.domain.subscriptions.get(topic, ()):
            local = Packet(self.host.ip, self.host.ip, DDS_PORT, DDS_PORT,
                           payload=data, payload_len=size if data is None else None)
            local.meta["dds_topic"] = topic
            self._reader_queues[topic].try_put(local)

    def publish_burst(self, topic, size, count):
        """Send ``count`` samples back to back (generator).

        Serialization cost amortizes its fixed component across the burst,
        and the socket writes coalesce — Cyclone's write-batching path.
        """
        subscribers = self.domain.subscribers(topic, exclude=self)
        for node in subscribers:
            packets = []
            for _ in range(count):
                packet = Packet(self.host.ip, node.host.ip, DDS_PORT, DDS_PORT, payload_len=size)
                packet.meta["dds_topic"] = topic
                packets.append(packet)
            cost = sum(
                self.host.stage_cost("dds_serialize", size, burst=count) for _ in packets
            )
            yield Timeout(cost)
            yield from self.socket.send_many(packets)

    # -- subscribe ----------------------------------------------------------------

    def subscribe(self, topic, callback):
        """Register a reader; ``callback(topic, packet)`` per sample."""
        self.domain.subscriptions[topic].add(self)
        self._callbacks[topic] = callback
        queue = self._reader_queues[topic]
        self.sim.process(self._reader_loop(topic, queue), name="dds.reader")
        return queue

    def _event_loop(self):
        """The receiver thread: socket -> per-reader queues."""
        while True:
            batch = yield from self.socket.recv_many(32)
            wake = self.host.stage_cost("dds_eventloop", 0, burst=len(batch))
            wake *= max(0.3, self.sim.rng.gauss(1.0, self.jitter_sigma))
            cost = wake * len(batch)
            for packet in batch:
                cost += self.host.stage_cost("dds_serialize", packet.payload_len, burst=len(batch))
            yield Timeout(cost)
            for packet in batch:
                topic = packet.meta.get("dds_topic")
                if topic in self._callbacks:
                    self._reader_queues[topic].try_put(packet)

    def _reader_loop(self, topic, queue):
        callback = self._callbacks[topic]
        while True:
            packet = yield Get(queue)
            self.samples_received.value += 1
            callback(topic, packet)
