"""The pure UDP-socket benchmark application (paper §6.2).

Two variants, as in Fig. 7: a *blocking* receive (each message pays a
process wake-up) and a *non-blocking* receive that continuously polls the
socket.
"""

from repro.datapaths import KernelUdpDatapath
from repro.netstack import Packet
from repro.simnet import RateMeter, Tally


class UdpBenchApp:
    """Ping-pong and streaming drivers over raw UDP sockets."""

    def __init__(self, testbed, blocking=False, port=7000):
        self.testbed = testbed
        self.sim = testbed.sim
        self.blocking = blocking
        self.port = port
        self.client_host = testbed.hosts[0]
        self.server_host = testbed.hosts[1]
        self.client_sock = KernelUdpDatapath.get(self.client_host).socket(port, blocking=blocking)
        self.server_sock = KernelUdpDatapath.get(self.server_host).socket(port, blocking=blocking)

    # -- ping-pong ------------------------------------------------------------

    def pingpong(self, rounds, size):
        """Run the RTT benchmark; returns a Tally of per-round RTTs (ns)."""
        sim = self.sim
        rtts = Tally("udp_%s_rtt" % ("blocking" if self.blocking else "nonblocking"))

        def client():
            for _ in range(rounds):
                start = sim.now
                yield from self.client_sock.send(self._packet(self.client_host, self.server_host, size))
                yield from self.client_sock.recv()
                rtts.record(sim.now - start)

        def server():
            while True:
                packet = yield from self.server_sock.recv()
                yield from self.server_sock.send(
                    self._packet(self.server_host, self.client_host, packet.payload_len)
                )

        sim.process(server(), name="udp.server")
        sim.process(client(), name="udp.client")
        sim.run()
        return rtts

    # -- streaming throughput -------------------------------------------------

    def stream(self, messages, size, burst=32):
        """Flood ``messages`` datagrams; returns the receiver's RateMeter."""
        sim = self.sim
        meter = RateMeter("udp_stream")

        def sender():
            remaining = messages
            while remaining:
                count = min(burst, remaining)
                packets = [
                    self._packet(self.client_host, self.server_host, size)
                    for _ in range(count)
                ]
                yield from self.client_sock.send_many(packets)
                remaining -= count

        def receiver():
            received = 0
            while received < messages:
                batch = yield from self.server_sock.recv_many(burst)
                for _packet in batch:
                    meter.record(sim.now, size)
                received += len(batch)

        sim.process(receiver(), name="udp.rx")
        sim.process(sender(), name="udp.tx")
        sim.run()
        return meter

    def _packet(self, src, dst, size):
        return Packet(src.ip, dst.ip, self.port, self.port, payload_len=size)
