"""A Demikernel-like library OS baseline (paper §4, §6.2).

Demikernel exposes POSIX-style asynchronous queues implemented by userspace
libraries, one per I/O technology.  We model the two libraries the paper
benchmarks:

* **Catnap** — maps network operations to kernel sockets;
* **Catnip** — maps to DPDK, optimized for latency: it "sends one packet
  per time on the network", so every push is synchronous with the wire and
  nothing amortizes across packets (the root of its Fig. 8a throughput gap
  against INSANE's opportunistic batching).

Structurally, Demikernel is a *library* compiled with the application: the
datapath runs in-process, so there is no IPC hop and no runtime dispatch —
cheaper than INSANE per packet, but single-application and bound to one
technology at compile time.
"""

from repro.datapaths import DpdkDatapath, KernelUdpDatapath
from repro.netstack import Packet
from repro.simnet import AnyOf, RateMeter, Signal, Tally, Timeout, Wait


class QToken:
    """A handle to an asynchronous Demikernel operation.

    Real Demikernel returns qtokens from ``demi_push``/``demi_pop`` and
    completes them through ``demi_wait``/``demi_wait_any``; this mirrors
    that contract on top of the simulated queues.
    """

    _next_id = 0

    def __init__(self, sim, kind):
        QToken._next_id += 1
        self.qtoken_id = QToken._next_id
        self.kind = kind             # "push" | "pop"
        self.signal = Signal(sim)

    @property
    def completed(self):
        return self.signal.fired

    @property
    def result(self):
        return self.signal.value


def demi_wait(qtoken):
    """Block until one operation completes (generator); returns its result."""
    return (yield Wait(qtoken.signal))


def demi_wait_any(qtokens):
    """Block until the first of several operations completes (generator);
    returns ``(index, result)``."""
    index, value = yield AnyOf([qt.signal for qt in qtokens])
    return index, value


class DemiQueue:
    """One Demikernel I/O queue bound to a port on one host."""

    def __init__(self, host, flavor, port):
        if flavor not in ("catnap", "catnip"):
            raise ValueError("flavor must be 'catnap' or 'catnip'")
        self.host = host
        self.sim = host.sim
        self.flavor = flavor
        self.port = port
        self.lib_stage = "catnap_lib" if flavor == "catnap" else "catnip_lib"
        if flavor == "catnap":
            self.socket = KernelUdpDatapath.get(host).socket(port, blocking=False)
        else:
            self.datapath = DpdkDatapath(host)
            self.queue = self.datapath.open_port(port)

    def _lib_cost(self, size, burst=1):
        return Timeout(self.host.stage_cost(self.lib_stage, size, burst=burst))

    def push(self, packet):
        """Submit one transmit operation (``demi_push``)."""
        yield self._lib_cost(packet.payload_len)
        if self.flavor == "catnap":
            yield from self.socket.send(packet)
        else:
            # Catnip: one packet at a time, synchronous with the wire.
            yield self.host.stage_cost_effect("ustack_tx", packet.payload_len)
            yield self.host.stage_cost_effect("dpdk_tx", packet.payload_len)
            departure = self.datapath.transmit(packet)
            if departure > self.sim.now:
                yield Timeout(departure - self.sim.now)

    def push_many(self, packets):
        """Submit a batch of transmit operations in one scheduler pass.

        Catnap's scheduler coalesces pending pushes into one socket call
        (sendmmsg-style); Catnip refuses to batch by design, so this is a
        plain loop of synchronous pushes there.
        """
        if self.flavor == "catnip":
            for packet in packets:
                yield from self.push(packet)
            return
        burst = len(packets)
        for packet in packets:
            yield self._lib_cost(packet.payload_len, burst=burst)
        yield from self.socket.send_many(packets)

    # -- asynchronous (qtoken) interface ---------------------------------

    def push_async(self, packet):
        """``demi_push``: submit a transmit; returns a :class:`QToken`."""
        qtoken = QToken(self.sim, "push")

        def op():
            yield from self.push(packet)
            return packet

        process = self.sim.process(op(), name="demi.push")
        process.done.add_waiter(lambda value, exc: qtoken.signal.succeed(value))
        return qtoken

    def pop_async(self, max_burst=32):
        """``demi_pop``: submit a receive; returns a :class:`QToken`."""
        qtoken = QToken(self.sim, "pop")

        def op():
            batch = yield from self.pop(max_burst)
            return batch

        process = self.sim.process(op(), name="demi.pop")
        process.done.add_waiter(lambda value, exc: qtoken.signal.succeed(value))
        return qtoken

    def pop(self, max_burst=32):
        """Wait for received data (``demi_pop``); returns a list of packets."""
        if self.flavor == "catnap":
            batch = yield from self.socket.recv_many(max_burst)
        else:
            batch = yield from self.datapath.recv_burst(self.queue, max_burst)
            for packet in batch:
                DpdkDatapath.release_rx(packet)
        yield self._lib_cost(
            batch[0].payload_len if batch else 0, burst=max(1, len(batch))
        )
        return batch


class DemikernelApp:
    """Ping-pong and streaming drivers over Demikernel queues."""

    def __init__(self, testbed, flavor, port=None):
        self.testbed = testbed
        self.sim = testbed.sim
        self.flavor = flavor
        self.port = port or (7002 if flavor == "catnap" else 7003)
        self.client_host = testbed.hosts[0]
        self.server_host = testbed.hosts[1]
        self.client_q = DemiQueue(self.client_host, flavor, self.port)
        self.server_q = DemiQueue(self.server_host, flavor, self.port)

    def pingpong(self, rounds, size):
        sim = self.sim
        rtts = Tally("%s_rtt" % self.flavor)

        def client():
            for _ in range(rounds):
                start = sim.now
                yield from self.client_q.push(
                    self._packet(self.client_host, self.server_host, size)
                )
                yield from self.client_q.pop()
                rtts.record(sim.now - start)

        def server():
            while True:
                batch = yield from self.server_q.pop()
                for packet in batch:
                    yield from self.server_q.push(
                        self._packet(self.server_host, self.client_host, packet.payload_len)
                    )

        sim.process(server(), name=self.flavor + ".server")
        sim.process(client(), name=self.flavor + ".client")
        sim.run()
        return rtts

    def stream(self, messages, size, burst=32):
        sim = self.sim
        meter = RateMeter("%s_stream" % self.flavor)

        def sender():
            remaining = messages
            while remaining:
                count = min(burst, remaining)
                packets = [
                    self._packet(self.client_host, self.server_host, size)
                    for _ in range(count)
                ]
                yield from self.client_q.push_many(packets)
                remaining -= count

        def receiver():
            received = 0
            while received < messages:
                batch = yield from self.server_q.pop(burst)
                for _packet in batch:
                    meter.record(sim.now, size)
                received += len(batch)

        sim.process(receiver(), name=self.flavor + ".rx")
        sim.process(sender(), name=self.flavor + ".tx")
        sim.run()
        return meter

    def _packet(self, src, dst, size):
        return Packet(src.ip, dst.ip, self.port, self.port, payload_len=size)
