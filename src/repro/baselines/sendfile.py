"""A ``sendfile``-based streaming baseline (paper §7.2).

``sendfile(2)`` moves data from a file descriptor through the kernel
without a userspace copy — sender-side zero copy, which is why the paper
uses it as the reference point for LUNAR Streaming.  The receiver is a
plain socket reader that reassembles fragment counts.
"""

import struct

from repro.datapaths import KernelUdpDatapath
from repro.netstack import IP_UDP_HEADER, Packet
from repro.simnet import Counter, Get, RateMeter, Store, Timeout

SENDFILE_PORT = 7600
_FRAME_HEADER = struct.Struct("!IIII")  # frame_id, index, count, frame_len

#: sendfile runs over TCP: the congestion/flow-control window bounds the
#: fragments in flight (modelled as a credit pool refilled by the receiver).
TCP_WINDOW_FRAGMENTS = 64


class SendfileStreamer:
    """Streams synthetic frames host0 -> host1 using sendfile semantics."""

    def __init__(self, testbed):
        self.testbed = testbed
        self.sim = testbed.sim
        self.server_host = testbed.hosts[0]
        self.client_host = testbed.hosts[1]
        self.datapath = KernelUdpDatapath.get(self.server_host)
        self.server_sock = self.datapath.socket(SENDFILE_PORT, blocking=False)
        self.client_sock = KernelUdpDatapath.get(self.client_host).socket(
            SENDFILE_PORT, blocking=False
        )
        self.max_fragment = self.server_host.profile.jumbo_mtu - IP_UDP_HEADER - _FRAME_HEADER.size
        self.frames_sent = Counter("sendfile.frames_sent")

    def stream_frames(self, frame_size, frames):
        """Send ``frames`` frames of ``frame_size`` bytes; returns
        ``(per_frame_latencies_ns, receiver_meter)``."""
        sim = self.sim
        latencies = []
        meter = RateMeter("sendfile")
        count = max(1, -(-frame_size // self.max_fragment))
        window = Store(sim, name="tcp.window")
        for _ in range(TCP_WINDOW_FRAGMENTS):
            window.put_nowait(1)

        def server():
            for frame_id in range(frames):
                for index in range(count):
                    yield Get(window)  # TCP flow control: wait for window space
                    data_len = min(self.max_fragment, frame_size - index * self.max_fragment)
                    header = _FRAME_HEADER.pack(frame_id, index, count, frame_size)
                    packet = Packet(
                        self.server_host.ip,
                        self.client_host.ip,
                        SENDFILE_PORT,
                        SENDFILE_PORT,
                        payload=header,
                        payload_len=_FRAME_HEADER.size + data_len,
                    )
                    packet.meta["frame_start"] = sim.now if index == 0 else None
                    # sendfile: the kernel send path without the user copy
                    # (replaces the regular sendto/udp_tx path entirely)
                    yield Timeout(
                        self.server_host.stage_cost("sendfile_tx", data_len)
                    )
                    self.datapath.transmit(packet)
                self.frames_sent.value += 1

        def client():
            pending = {}
            received_frames = 0
            while received_frames < frames:
                batch = yield from self.client_sock.recv_many(32)
                for packet in batch:
                    window.try_put(1)  # ACK opens the window again
                    header = packet.payload[: _FRAME_HEADER.size]
                    frame_id, index, total, frame_len = _FRAME_HEADER.unpack(bytes(header))
                    state = pending.setdefault(frame_id, {"got": 0, "start": sim.now})
                    if packet.meta.get("frame_start") is not None:
                        state["start"] = packet.meta["frame_start"]
                    state["got"] += 1
                    if state["got"] == total:
                        latencies.append(sim.now - state["start"])
                        meter.record(sim.now, frame_len)
                        del pending[frame_id]
                        received_frames += 1

        sim.process(client(), name="sendfile.client")
        sim.process(server(), name="sendfile.server")
        sim.run()
        return latencies, meter
