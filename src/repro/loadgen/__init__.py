"""Closed-loop load generation, windowed statistics, capacity planning.

The quantitative backbone the ROADMAP calls for: instead of open-loop
fixed-message-count runs, this package models ``N`` interactive clients
with think time and a bounded outstanding-request window
(:mod:`repro.loadgen.client`), measures only a stability-tested stable
region of warmup/stable/cooldown windows (:mod:`repro.loadgen.windows`),
self-checks every run against the interactive response-time law
``N = X * (R + Z)``, and sweeps client counts per datapath to locate the
latency-throughput knee and fit a capacity model
(:mod:`repro.loadgen.capacity` — the ``insane bench capacity`` command).
"""

from repro.loadgen.capacity import (
    CAPACITY_CELL_KIND,
    DEFAULT_CLIENTS,
    capacity_cells,
    find_knee,
    fit_capacity_model,
    format_capacity,
    normalize_datapath,
    run_capacity,
    run_closed_loop_cell,
)
from repro.loadgen.client import THINK_DISTRIBUTIONS, run_closed_loop, think_sampler
from repro.loadgen.scenario import drive_closed_loop
from repro.loadgen.windows import (
    WindowPlan,
    WindowedRecorder,
    accept_stable,
    check_interactive_law,
    law_residual,
)

__all__ = [
    "CAPACITY_CELL_KIND",
    "DEFAULT_CLIENTS",
    "THINK_DISTRIBUTIONS",
    "WindowPlan",
    "WindowedRecorder",
    "accept_stable",
    "capacity_cells",
    "check_interactive_law",
    "drive_closed_loop",
    "find_knee",
    "fit_capacity_model",
    "format_capacity",
    "law_residual",
    "normalize_datapath",
    "run_capacity",
    "run_closed_loop",
    "run_closed_loop_cell",
    "think_sampler",
]
