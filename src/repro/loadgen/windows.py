"""Windowed steady-state measurement: warmup / stable / cooldown.

Open-loop fixed-message-count benchmarks report one number over the whole
run — ramp-up and drain included.  The closed-loop harness instead runs
for a planned span of simulated time split into phases::

    |-- warmup --|-- w0 --|-- w1 --| ... |-- w(k-1) --|-- cooldown --|

Only the k *stable* windows are measured (per-window
:class:`~repro.obs.LogHistogram` latency, completion throughput, cycle
and think-time sums); warmup and cooldown samples are counted but
discarded.  Before any number is reported, the windows must pass a
window-to-window stability test (:func:`accept_stable`) — each accepted
window's throughput and mean latency must sit within a tolerance band
around the across-window medians, in the style of the Queueing
middleware's stable-window methodology.  Runs whose windows disagree
raise :class:`~repro.core.errors.StabilityError` instead of averaging
noise.

The layer also owns the harness's self-check: the interactive
response-time law ``N = X * (R + Z)``.  Per accepted window it is an
identity over complete client cycles (every client is always either in
its response phase or thinking), so the residual measures nothing but
boundary effects — a residual above epsilon means the harness's own
bookkeeping is wrong, and :func:`check_interactive_law` fails loudly
(:class:`~repro.core.errors.InteractiveLawError`).
"""

from repro.core.errors import InteractiveLawError, StabilityError
from repro.obs import LogHistogram

NS_PER_S = 1e9


class WindowPlan:
    """The phase layout of one closed-loop run, all durations in ns."""

    __slots__ = ("warmup_ns", "window_ns", "windows", "cooldown_ns")

    def __init__(self, warmup_ns=400_000.0, window_ns=2_000_000.0,
                 windows=3, cooldown_ns=100_000.0):
        if warmup_ns < 0 or cooldown_ns < 0:
            raise ValueError("warmup/cooldown must be >= 0 ns")
        if window_ns <= 0:
            raise ValueError("window_ns must be > 0, got %r" % (window_ns,))
        if windows < 1:
            raise ValueError("need at least one stable window, got %r"
                             % (windows,))
        self.warmup_ns = float(warmup_ns)
        self.window_ns = float(window_ns)
        self.windows = int(windows)
        self.cooldown_ns = float(cooldown_ns)

    @property
    def stable_ns(self):
        return self.window_ns * self.windows

    @property
    def total_ns(self):
        return self.warmup_ns + self.stable_ns + self.cooldown_ns

    def index(self, now):
        """The stable-window index covering instant ``now``.

        ``None`` during warmup and cooldown — those samples are observed
        but never measured.
        """
        offset = now - self.warmup_ns
        if offset < 0:
            return None
        index = int(offset // self.window_ns)
        return index if index < self.windows else None

    def start_ns(self, index):
        return self.warmup_ns + index * self.window_ns

    def to_dict(self):
        return {
            "warmup_ns": self.warmup_ns,
            "window_ns": self.window_ns,
            "windows": self.windows,
            "cooldown_ns": self.cooldown_ns,
        }


class _WindowStats:
    """Accumulators for one stable window."""

    __slots__ = ("hist", "responses", "cycles", "response_ns", "think_ns")

    def __init__(self, hist_lo, hist_hi):
        self.hist = LogHistogram(lo=hist_lo, hi=hist_hi)
        self.responses = 0
        self.cycles = 0
        self.response_ns = 0.0
        self.think_ns = 0.0


class WindowedRecorder:
    """Routes observations into the window their completion instant hits.

    Two granularities feed it: :meth:`record_response` per request
    (latency histogram + throughput) and :meth:`record_cycle` per client
    cycle (response phase + think phase, recorded at think end — the
    inputs of the interactive-law identity).
    """

    def __init__(self, plan, hist_lo=10.0, hist_hi=1e9):
        self.plan = plan
        self._stats = [_WindowStats(hist_lo, hist_hi)
                       for _ in range(plan.windows)]
        #: responses landing in warmup/cooldown (observed, not measured).
        self.discarded_responses = 0
        self.discarded_cycles = 0

    def record_response(self, now, latency_ns):
        index = self.plan.index(now)
        if index is None:
            self.discarded_responses += 1
            return
        stats = self._stats[index]
        stats.hist.record(latency_ns)
        stats.responses += 1

    def record_cycle(self, now, response_ns, think_ns):
        index = self.plan.index(now)
        if index is None:
            self.discarded_cycles += 1
            return
        stats = self._stats[index]
        stats.cycles += 1
        stats.response_ns += response_ns
        stats.think_ns += think_ns

    def histogram(self, index):
        """The live per-window latency histogram (for merging)."""
        return self._stats[index].hist

    def summaries(self):
        """Per-window JSON-native summaries, in window order."""
        window_s = self.plan.window_ns / NS_PER_S
        out = []
        for index, stats in enumerate(self._stats):
            hist = stats.hist
            cycles = stats.cycles
            out.append({
                "index": index,
                "start_ns": self.plan.start_ns(index),
                "duration_ns": self.plan.window_ns,
                "responses": stats.responses,
                "throughput_rps": stats.responses / window_s,
                "cycles": cycles,
                "mean_response_ns": (stats.response_ns / cycles
                                     if cycles else None),
                "mean_think_ns": stats.think_ns / cycles if cycles else None,
                "latency": {
                    "count": hist.count,
                    "mean_ns": hist.mean,
                    "p50_ns": hist.percentile(50),
                    "p99_ns": hist.percentile(99),
                    "max_ns": hist.maximum,
                },
            })
        return out


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def accept_stable(summaries, tol=0.25, min_windows=1):
    """Indices of windows accepted as the stable region.

    Acceptance rule: a window must have completions, and both its
    throughput and its mean latency must sit within ``tol`` (relative)
    of the across-window medians.  Fewer than ``min_windows`` survivors
    raise :class:`StabilityError` with the per-window numbers — a run
    that never settled must fail, not report its noise.
    """
    candidates = [s for s in summaries
                  if s["responses"] > 0 and s["cycles"] > 0]
    if not candidates:
        raise StabilityError(
            "no stable window recorded a single completed cycle — the run "
            "is too short (or the clients deadlocked); lengthen the "
            "windows or reduce load"
        )
    median_x = _median([s["throughput_rps"] for s in candidates])
    median_r = _median([s["latency"]["mean_ns"] for s in candidates])
    accepted = []
    for summary in candidates:
        x_ok = abs(summary["throughput_rps"] - median_x) <= tol * median_x
        r_ok = abs(summary["latency"]["mean_ns"] - median_r) \
            <= tol * median_r
        if x_ok and r_ok:
            accepted.append(summary["index"])
    if len(accepted) < min_windows:
        detail = ", ".join(
            "w%d: X=%.0f rps R=%.0f ns" % (s["index"], s["throughput_rps"],
                                           s["latency"]["mean_ns"])
            for s in summaries
        )
        raise StabilityError(
            "only %d/%d window(s) within %.0f%% of the medians "
            "(X=%.0f rps, R=%.0f ns) — no trustworthy stable region [%s]"
            % (len(accepted), len(summaries), tol * 100.0, median_x,
               median_r, detail)
        )
    return accepted


def law_residual(summary, clients):
    """``|N - X*(R+Z)| / N`` for one window summary (None without cycles).

    ``X`` is the *cycle* completion rate and ``R``/``Z`` the mean
    response/think phases of those cycles, so the identity holds for any
    outstanding-window size — a client is one customer regardless of how
    many requests each of its cycles pipelines.
    """
    cycles = summary["cycles"]
    if not cycles:
        return None
    duration_s = summary["duration_ns"] / NS_PER_S
    x_cycle = cycles / duration_s
    r_plus_z_s = (summary["mean_response_ns"]
                  + summary["mean_think_ns"]) / NS_PER_S
    implied = x_cycle * r_plus_z_s
    return abs(clients - implied) / clients


def check_interactive_law(summaries, accepted, clients, epsilon=0.05,
                          raise_on_violation=True):
    """Evaluate the interactive law over every accepted window.

    Returns a JSON-native block::

        {"clients": N, "epsilon": e, "ok": bool, "max_residual": r,
         "residuals": [{"index": i, "residual": r_i}, ...]}

    With ``raise_on_violation`` (the default), a residual above epsilon
    raises :class:`InteractiveLawError` naming the worst window — the
    self-check every closed-loop run must pass before its numbers mean
    anything.
    """
    by_index = {summary["index"]: summary for summary in summaries}
    residuals = []
    worst = None
    for index in accepted:
        residual = law_residual(by_index[index], clients)
        if residual is None:
            continue
        residuals.append({"index": index, "residual": residual})
        if worst is None or residual > worst["residual"]:
            worst = residuals[-1]
    max_residual = worst["residual"] if worst else 0.0
    ok = max_residual <= epsilon
    if not ok and raise_on_violation:
        summary = by_index[worst["index"]]
        raise InteractiveLawError(
            "interactive law violated in window %d: |N - X*(R+Z)|/N = "
            "%.4f > epsilon %.4f (N=%d, cycles=%d, R=%.0f ns, Z=%.0f ns) "
            "— the harness's own accounting is inconsistent"
            % (worst["index"], worst["residual"], epsilon, clients,
               summary["cycles"], summary["mean_response_ns"],
               summary["mean_think_ns"])
        )
    return {
        "clients": clients,
        "epsilon": epsilon,
        "ok": ok,
        "max_residual": max_residual,
        "residuals": residuals,
    }
