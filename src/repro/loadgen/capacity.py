"""Capacity sweeps: client-count grids, the knee, and a capacity model.

A capacity sweep runs the closed-loop workload at increasing client
counts ``N`` on one pinned datapath, each point as one sweep cell
(``kind="loadgen.closed_loop"``) through the deterministic
:class:`~repro.parallel.SweepExecutor` — sharding, result caching, and
the bit-identical merged digest at any worker count all apply unchanged.

From the per-N stable-window statistics the sweep derives:

* the **knee** — the ``N`` maximizing *power* ``X / R`` (throughput per
  unit response time), the classic latency-throughput operating point:
  left of it adding clients buys nearly linear throughput, right of it
  mostly buys queueing delay;
* a simple **capacity model** — the two asymptotic bounds of interactive
  queueing: the light-load line ``X(N) = N / (R0 + Z)`` and the
  saturation ceiling ``X_max``, whose intersection
  ``N* = X_max * (R0 + Z)`` estimates the saturation client count.

Every point has already passed its own stability test and interactive-law
self-check inside the worker (a violating point aborts the sweep loudly),
so the numbers the model is fitted to are self-verified.
"""

from repro.loadgen.client import run_closed_loop
from repro.loadgen.windows import NS_PER_S, WindowPlan
from repro.report import RunReport

CAPACITY_CELL_KIND = "loadgen.closed_loop"

#: accepted datapath spellings -> canonical registry name.  The obs layer
#: labels the kernel stack ``kernel_udp``; the registry calls it ``udp``.
DATAPATH_ALIASES = {
    "udp": "udp",
    "kernel_udp": "udp",
    "xdp": "xdp",
    "dpdk": "dpdk",
    "rdma": "rdma",
}

#: default client-count grid of ``insane bench capacity``.
DEFAULT_CLIENTS = (1, 2, 4, 8, 16)


def normalize_datapath(name):
    canonical = DATAPATH_ALIASES.get(name)
    if canonical is None:
        raise ValueError(
            "unknown datapath %r (choose from %s)"
            % (name, ", ".join(sorted(DATAPATH_ALIASES)))
        )
    return canonical


def build_stack(datapath, profile="local", seed=0):
    """A fresh testbed + deployment with ``datapath`` pinned.

    An rdma pin on an RNIC-less profile provisions the NIC, exactly as
    the scenario compiler does for explicit rdma pins.
    """
    from repro.core.config import RuntimeConfig
    from repro.core.runtime import InsaneDeployment
    from repro.hw import Testbed
    from repro.hw.profiles import PROFILES

    datapath = normalize_datapath(datapath)
    hw_profile = PROFILES[profile]
    if datapath == "rdma" and not hw_profile.rdma_nic:
        hw_profile = hw_profile.replace(rdma_nic=True)
    testbed = Testbed(hw_profile, hosts=2, seed=seed)
    config = RuntimeConfig()
    config.mapping_strategy = lambda policy, available, _pin=datapath: _pin
    deployment = InsaneDeployment(testbed, config=config)
    return testbed, deployment


def run_closed_loop_cell(datapath="udp", profile="local", clients=4,
                         think_ns=10_000.0, think_dist="exponential",
                         size=64, outstanding=1, warmup_ns=400_000.0,
                         window_ns=2_000_000.0, windows=3,
                         cooldown_ns=100_000.0, epsilon=0.05,
                         stability_tol=0.25, seed=0):
    """One capacity grid point (worker-side sweep-cell runner).

    Builds an isolated pinned stack and runs the closed-loop workload;
    the payload is the full closed-loop metrics dict — a pure function
    of the parameters, bit-identical at any worker count.
    """
    testbed, deployment = build_stack(datapath, profile=profile, seed=seed)
    plan = WindowPlan(warmup_ns=warmup_ns, window_ns=window_ns,
                      windows=windows, cooldown_ns=cooldown_ns)
    metrics = run_closed_loop(
        testbed, deployment, clients=clients, think_ns=think_ns,
        think_dist=think_dist, size=size, outstanding=outstanding,
        plan=plan, seed=seed, epsilon=epsilon,
        stability_tol=stability_tol,
    )
    metrics["datapath"]["pinned"] = normalize_datapath(datapath)
    metrics["profile"] = profile
    return metrics


def capacity_cells(datapath, clients=DEFAULT_CLIENTS, profile="local",
                   seed=0, **params):
    """The client-count grid as sweep cells (one cell per N)."""
    from repro.parallel.cells import make_cell

    datapath = normalize_datapath(datapath)
    return [
        make_cell(CAPACITY_CELL_KIND, datapath=datapath, profile=profile,
                  clients=n, seed=seed, **params)
        for n in sorted(set(clients))
    ]


def point_from_metrics(metrics):
    """One capacity datapoint from a closed-loop run's metrics dict."""
    stable = metrics["stable"]
    return {
        "clients": metrics["clients"],
        "throughput_rps": stable["throughput_rps"],
        "mean_ns": stable["latency"]["mean_ns"],
        "p50_ns": stable["latency"]["p50_ns"],
        "p99_ns": stable["latency"]["p99_ns"],
        "power_rps_per_s": stable["throughput_rps"]
        / (stable["latency"]["mean_ns"] / NS_PER_S),
        "law_max_residual": metrics["law"]["max_residual"],
        "accepted_windows": len(metrics["accepted_windows"]),
    }


def sweep_points(sweep):
    """Per-N datapoints from a capacity sweep, sorted by client count."""
    points = [point_from_metrics(result.payload) for result in sweep.results]
    points.sort(key=lambda point: point["clients"])
    return points


def find_knee(points):
    """The latency-throughput knee: the point maximizing ``X / R``.

    Ties break toward the smaller client count (the cheaper operating
    point with the same power).
    """
    if not points:
        raise ValueError("cannot locate a knee in an empty sweep")
    return max(points, key=lambda p: (p["power_rps_per_s"], -p["clients"]))


def fit_capacity_model(points, think_ns):
    """The two-bound interactive capacity model from swept datapoints.

    ``r0_ns`` is the zero-contention response time (lightest measured
    load), ``x_max_rps`` the saturation throughput (highest measured),
    and ``n_star = x_max * (r0 + z)`` their intersection — below
    ``n_star`` the system is latency-bound, above it throughput-bound.
    """
    if not points:
        raise ValueError("cannot fit a capacity model to an empty sweep")
    r0_ns = points[0]["mean_ns"]
    x_max_rps = max(point["throughput_rps"] for point in points)
    n_star = x_max_rps * (r0_ns + think_ns) / NS_PER_S
    return {
        "r0_ns": r0_ns,
        "x_max_rps": x_max_rps,
        "think_ns": float(think_ns),
        "n_star": n_star,
    }


def run_capacity(datapath="udp", clients=DEFAULT_CLIENTS, profile="local",
                 workers=1, cache=None, seed=0, think_ns=10_000.0,
                 **params):
    """Sweep client counts on one datapath; returns ``(report, sweep)``.

    The :class:`~repro.report.RunReport` (kind ``bench.capacity``)
    carries the key-ordered datapoints, the knee, the fitted capacity
    model, and the executor's merged digest in its digest-compared
    ``data`` block; worker/cache provenance goes in ``meta``.
    """
    from repro.parallel import SweepExecutor

    cells = capacity_cells(datapath, clients=clients, profile=profile,
                           seed=seed, think_ns=think_ns, **params)
    sweep = SweepExecutor(workers=workers, cache=cache).run(cells)
    points = sweep_points(sweep)
    knee = find_knee(points)
    model = fit_capacity_model(points, think_ns)
    report = RunReport(
        kind="bench.capacity",
        data={
            "datapath": normalize_datapath(datapath),
            "profile": profile,
            "seed": seed,
            "points": points,
            "knee": knee,
            "model": model,
            "merged_digest": sweep.merged_digest(),
        },
        meta={
            "workers": sweep.workers,
            "executed": sweep.executed,
            "cache_hits": sweep.cache_hits,
        },
    )
    return report, sweep


def format_capacity(report):
    """Human-readable rendering of one ``bench.capacity`` report."""
    data = report.data
    lines = [
        "capacity: datapath=%s profile=%s seed=%d"
        % (data["datapath"], data["profile"], data["seed"]),
        "  %7s %14s %10s %10s %10s %9s"
        % ("clients", "X (req/s)", "mean (us)", "p50 (us)", "p99 (us)",
           "law res."),
    ]
    knee_clients = data["knee"]["clients"]
    for point in data["points"]:
        marker = "  <-- knee" if point["clients"] == knee_clients else ""
        lines.append(
            "  %7d %14.0f %10.2f %10.2f %10.2f %8.2f%%%s"
            % (point["clients"], point["throughput_rps"],
               point["mean_ns"] / 1000.0, point["p50_ns"] / 1000.0,
               point["p99_ns"] / 1000.0,
               point["law_max_residual"] * 100.0, marker)
        )
    model = data["model"]
    lines.append(
        "  model: R0=%.2f us, X_max=%.0f req/s, Z=%.2f us -> N*=%.1f "
        "clients" % (model["r0_ns"] / 1000.0, model["x_max_rps"],
                     model["think_ns"] / 1000.0, model["n_star"])
    )
    lines.append("  merged digest %s" % data["merged_digest"])
    return "\n".join(lines)
