"""The closed-loop client model, driven on the simulated INSANE stack.

Open-loop benchmarks (everything in :mod:`repro.bench`) push a fixed
message count as fast as the stack admits it; a *closed-loop* workload
instead models ``N`` interactive clients.  Each client cycles forever::

    acquire window slot(s) -> emit burst of W requests -> await the W
    responses -> think Z -> repeat

``W`` is the session-level outstanding-request window
(:meth:`repro.core.Session.outstanding_window`): one slot is acquired per
emit and released per consumed response, so at most ``W`` requests of a
client are ever in flight.  Think time ``Z`` is fixed or exponential,
drawn from a per-client rng seeded by ``(seed, client index)`` — never
from shared state, so runs are bit-identical regardless of interleaving.

Responses are echoed by one server process per client channel on the
second host.  Every request's latency lands in the windowed measurement
layer (:mod:`repro.loadgen.windows`), which also receives one record per
completed cycle (response phase + think phase) — the inputs of the
interactive-law self-check.  :func:`run_closed_loop` returns a
JSON-native metrics dict; it *raises* (never returns) when the run has
no acceptable stable region or fails the law check.
"""

import random
from collections import deque

from repro.core import QosPolicy, Session
from repro.loadgen.windows import (
    NS_PER_S,
    WindowPlan,
    WindowedRecorder,
    accept_stable,
    check_interactive_law,
)
from repro.obs import LogHistogram
from repro.simnet import Timeout

#: stream name + first client channel; fixed so metrics digests never
#: depend on driver internals.
STREAM_NAME = "loadgen"
BASE_CHANNEL = 64

THINK_DISTRIBUTIONS = ("fixed", "exponential")


def think_sampler(distribution, mean_ns, seed, index):
    """A zero-argument think-time sampler for client ``index``.

    Each client owns a private :class:`random.Random` seeded from the
    run seed and the client index, so the think stream is a pure
    function of ``(seed, index)`` — independent of scheduling order.
    """
    if distribution not in THINK_DISTRIBUTIONS:
        raise ValueError("think distribution must be one of %s, got %r"
                         % (THINK_DISTRIBUTIONS, distribution))
    if mean_ns < 0:
        raise ValueError("mean think time must be >= 0 ns")
    if distribution == "fixed" or mean_ns == 0:
        return lambda: mean_ns
    rng = random.Random("loadgen:%d:%d" % (seed, index))
    rate = 1.0 / mean_ns
    return lambda: rng.expovariate(rate)


def run_closed_loop(testbed, deployment, *, clients, think_ns=10_000.0,
                    think_dist="exponential", size=64, outstanding=1,
                    plan=None, policy=None, seed=0, epsilon=0.05,
                    stability_tol=0.25, min_windows=1, check_law=True):
    """Drive ``clients`` closed-loop clients; returns the metrics dict.

    ``plan`` is the :class:`~repro.loadgen.windows.WindowPlan` (defaults
    apply when omitted); the simulation runs exactly ``plan.total_ns``
    of virtual time — clients cycle forever and are cut off by the
    deadline, so there is no fixed message count anywhere.

    Raises :class:`~repro.core.errors.StabilityError` when no stable
    region passes the window-to-window test and
    :class:`~repro.core.errors.InteractiveLawError` when any accepted
    window violates ``|N - X*(R+Z)|/N <= epsilon`` (disable the hard
    failure with ``check_law=False``; the residuals are still reported).
    """
    if clients < 1:
        raise ValueError("need at least one client, got %r" % (clients,))
    if outstanding < 1:
        raise ValueError("outstanding window must be >= 1, got %r"
                         % (outstanding,))
    plan = plan or WindowPlan()
    policy = policy or QosPolicy.fast()
    sim = testbed.sim
    recorder = WindowedRecorder(plan)

    client_session = Session(deployment.runtime(0), "loadgen-client")
    server_session = Session(deployment.runtime(1), "loadgen-server")
    client_stream = client_session.create_stream(policy, name=STREAM_NAME)
    server_stream = server_session.create_stream(policy, name=STREAM_NAME)
    initial_datapath = client_stream.datapath

    def client_proc(index):
        request_channel = BASE_CHANNEL + 2 * index
        reply_channel = BASE_CHANNEL + 2 * index + 1
        source = client_session.create_source(client_stream, request_channel)
        sink = client_session.create_sink(client_stream, reply_channel)
        window = client_session.outstanding_window(outstanding)
        think = think_sampler(think_dist, think_ns, seed, index)
        emit_times = deque()
        while True:
            cycle_start = sim.now
            for _ in range(outstanding):
                yield from window.acquire()
                buffer = yield from client_session.get_buffer_wait(
                    source, size)
                emit_times.append(sim.now)
                yield from client_session.emit_data(
                    source, buffer, length=size)
            for _ in range(outstanding):
                delivery = yield from client_session.consume_data(sink)
                recorder.record_response(sim.now,
                                         sim.now - emit_times.popleft())
                client_session.release_buffer(sink, delivery)
                window.release()
            response_ns = sim.now - cycle_start
            think_draw = think()
            if think_draw:
                yield Timeout(think_draw)
            recorder.record_cycle(sim.now, response_ns, think_draw)

    def echo_proc(index):
        request_channel = BASE_CHANNEL + 2 * index
        reply_channel = BASE_CHANNEL + 2 * index + 1
        sink = server_session.create_sink(server_stream, request_channel)
        source = server_session.create_source(server_stream, reply_channel)
        while True:
            delivery = yield from server_session.consume_data(sink)
            server_session.release_buffer(sink, delivery)
            buffer = yield from server_session.get_buffer_wait(source, size)
            yield from server_session.emit_data(source, buffer, length=size)

    for index in range(clients):
        sim.process(echo_proc(index), name="loadgen.echo%d" % index)
    for index in range(clients):
        sim.process(client_proc(index), name="loadgen.client%d" % index)
    sim.run(until=plan.total_ns)

    summaries = recorder.summaries()
    accepted = accept_stable(summaries, tol=stability_tol,
                             min_windows=min_windows)
    law = check_interactive_law(summaries, accepted, clients,
                                epsilon=epsilon,
                                raise_on_violation=check_law)
    stable = _stable_block(recorder, summaries, accepted)
    return {
        "kind": "closed_loop",
        "clients": clients,
        "outstanding": outstanding,
        "think_ns": float(think_ns),
        "think_dist": think_dist,
        "size": size,
        "seed": seed,
        "plan": plan.to_dict(),
        "windows": summaries,
        "accepted_windows": accepted,
        "discarded_responses": recorder.discarded_responses,
        "stable": stable,
        "law": law,
        "datapath": {
            "initial": initial_datapath,
            "final": client_stream.datapath,
            "degraded": client_stream.degraded,
        },
    }


def _stable_block(recorder, summaries, accepted):
    """Aggregate statistics over the accepted stable region."""
    merged = LogHistogram.merged(
        recorder.histogram(index) for index in accepted)
    duration_ns = recorder.plan.window_ns * len(accepted)
    by_index = {summary["index"]: summary for summary in summaries}
    responses = sum(by_index[i]["responses"] for i in accepted)
    cycles = sum(by_index[i]["cycles"] for i in accepted)
    think_total = sum(
        by_index[i]["mean_think_ns"] * by_index[i]["cycles"]
        for i in accepted if by_index[i]["cycles"]
    )
    return {
        "windows": len(accepted),
        "duration_ns": duration_ns,
        "responses": responses,
        "throughput_rps": responses / (duration_ns / NS_PER_S),
        "cycles": cycles,
        "mean_think_ns": think_total / cycles if cycles else None,
        "latency": {
            "count": merged.count,
            "mean_ns": merged.mean,
            "p50_ns": merged.percentile(50),
            "p99_ns": merged.percentile(99),
            "p999_ns": merged.percentile(99.9),
            "max_ns": merged.maximum,
        },
    }
