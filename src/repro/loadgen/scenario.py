"""The ``closed_loop`` scenario workload: one point or an in-DSL sweep.

Bridges the scenario layer (:mod:`repro.scenario`) onto the closed-loop
harness.  A scalar ``clients`` runs one operating point; a list runs a
serial capacity sweep — each point on its own freshly built stack with
its own fresh fault schedule (schedules arm exactly once), exactly like
the baseline driver's per-system stacks.

Sweep metrics carry a ``capacity`` block (datapoints, the knee, the
fitted model), and the headline ``stable``/``law``/``latency`` blocks
come *from the knee point* — so stable-window SLOs assert at the located
operating point, not at an arbitrary end of the grid.  Either shape
keeps the interactive-law self-check armed: a residual above epsilon in
any accepted window raises before SLO evaluation ever runs.
"""

from repro.core import QosPolicy
from repro.core.config import RuntimeConfig
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from repro.hw.profiles import PROFILES
from repro.loadgen.capacity import (
    find_knee,
    fit_capacity_model,
    point_from_metrics,
)
from repro.loadgen.client import run_closed_loop
from repro.loadgen.windows import WindowPlan


def _run_point(spec, clients):
    """One closed-loop operating point on a fresh spec-derived stack."""
    from repro.scenario.compile import build_schedule

    workload = spec["workload"]
    topology = spec["topology"]
    profile = PROFILES[topology["profile"]]
    pin = workload.get("datapath")
    if pin == "rdma" and not profile.rdma_nic:
        profile = profile.replace(rdma_nic=True)
    testbed = Testbed(profile, hosts=topology["hosts"], seed=spec["seed"])
    config = RuntimeConfig(trace=True)
    if pin is not None:
        config.mapping_strategy = lambda policy, available, _pin=pin: _pin
    deployment = InsaneDeployment(testbed, config=config)
    schedule = build_schedule(spec)
    trace = None
    if len(schedule):
        trace = schedule.apply(testbed, deployment)
    plan = WindowPlan(
        warmup_ns=workload["warmup"], window_ns=workload["window"],
        windows=workload["windows"], cooldown_ns=workload["cooldown"],
    )
    metrics = run_closed_loop(
        testbed, deployment, clients=clients,
        think_ns=workload["think"], think_dist=workload["think_dist"],
        size=workload["size"], outstanding=workload["outstanding"],
        plan=plan, policy=QosPolicy.from_dict(workload["qos"]),
        seed=spec["seed"], epsilon=workload["epsilon"],
    )
    metrics["faults"] = {
        "events": len(trace.events) if trace else 0,
        "digest": trace.digest() if trace else None,
    }
    return metrics


def drive_closed_loop(spec):
    """Run the spec's ``closed_loop`` workload; returns the metrics dict."""
    clients = spec["workload"]["clients"]
    if not isinstance(clients, list):
        return _run_point(spec, clients)
    runs = [_run_point(spec, count) for count in clients]
    points = [point_from_metrics(metrics) for metrics in runs]
    knee = find_knee(points)
    model = fit_capacity_model(points, spec["workload"]["think"])
    at_knee = runs[[p["clients"] for p in points].index(knee["clients"])]
    metrics = dict(at_knee)
    metrics["clients"] = list(clients)
    metrics["capacity"] = {
        "points": points,
        "knee_clients": knee["clients"],
        "knee": knee,
        "model": model,
    }
    return metrics
