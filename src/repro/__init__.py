"""Reproduction of INSANE: a unified middleware for QoS-aware network
acceleration in edge cloud computing (ACM Middleware 2023).

Top-level convenience imports::

    from repro import InsaneDeployment, QosPolicy, Session, Testbed

See README.md for the architecture tour, DESIGN.md for the substitution
strategy behind the simulation substrate, and EXPERIMENTS.md for paper-vs-
measured results of every table and figure.
"""

__version__ = "1.0.0"

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment, InsaneRuntime
from repro.hw import CLOUD_TESTBED, LOCAL_TESTBED, Testbed

__all__ = [
    "CLOUD_TESTBED",
    "InsaneDeployment",
    "InsaneRuntime",
    "LOCAL_TESTBED",
    "QosPolicy",
    "Session",
    "Testbed",
    "__version__",
]
