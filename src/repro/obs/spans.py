"""Span-based message-lifecycle tracing.

The data model has two levels:

* a **root** :class:`MessageTrace` per emitted message (created by
  :meth:`LifecycleTracer.begin` from ``Session.emit_data``), covering
  emit -> sink consume;
* one **child** :class:`MessageTrace` per wire packet of the message
  (created by :meth:`LifecycleTracer.fork` from the egress binding's
  ``_build_packet``), carrying the per-stage stamps recorded along the
  datapath: scheduler, tx stack, NIC, link/switch, rx, dispatch.

:class:`MessageTrace` subclasses ``dict`` so every existing stamp site in
the stack — ``trace["runtime_tx"] = now``, ``packet.stamp(key, now)`` —
works unchanged whether it holds a legacy plain-dict trace or a tracer
record.  Stamps never schedule events or draw from the rng, so enabling
tracing does not perturb simulated results (the determinism contract),
and every hook is guarded by an attribute-load + ``None``-check so runs
with tracing off execute identical Python (the no-op-hook guarantee,
asserted against ``BENCH_wallclock.json`` by the perf smoke).

Spans are derived, not stored: each stamp closes the stage that began at
the previous stamp, so :func:`spans_of` turns a record's insertion-ordered
stamp dict into parent/child :class:`Span` objects on demand.
"""

from repro.obs.histogram import LogHistogram

#: Lifecycle states of a message record.
OPEN = "open"
DELIVERED = "delivered"
DROPPED = "dropped"
FAILED = "failed"


class MessageTrace(dict):
    """Stage-timestamp record for one message (root) or wire packet (child).

    The mapping itself is ``stamp_key -> ns``; insertion order is stage
    order.  Everything else — identity, topology, annotations, lifecycle
    state — lives in slots so the stamp dict stays exactly what the
    hot-path hook sites expect.
    """

    __slots__ = (
        "tracer", "msg_id", "parent", "children", "stream", "channel",
        "size", "datapath", "src_host", "dst", "app", "annotations",
        "state", "closed_ns", "deliveries",
    )

    def __init__(self, tracer, msg_id, *, stream=None, channel=None,
                 size=None, datapath=None, src_host=None, dst=None,
                 app=None, parent=None):
        super().__init__()
        self.tracer = tracer
        self.msg_id = msg_id
        self.parent = parent
        self.children = []
        self.stream = stream
        self.channel = channel
        self.size = size
        self.datapath = datapath
        self.src_host = src_host
        self.dst = dst
        self.app = app
        self.annotations = []
        self.state = OPEN
        self.closed_ns = None
        self.deliveries = 0

    # -- hooks called from the stack -------------------------------------------

    def annotate(self, ns, kind, detail=""):
        """Attach a timeline annotation (fault, drop, migration, ...)."""
        self.annotations.append((ns, kind, detail))

    def mark_dropped(self, ns, reason):
        """The packet (and with it the message copy) died on the wire/NIC."""
        self.annotations.append((ns, "drop", reason))
        if self.state == OPEN:
            self.state = DROPPED
            self.closed_ns = ns
        parent = self.parent
        if parent is not None and parent.state == OPEN and not parent.deliveries:
            parent.annotations.append((ns, "drop", reason))

    def finish(self, ns, sink=None):
        """A sink consumed this message; closes the root span."""
        root = self.parent or self
        if self is not root and "app_consume" not in self:
            self["app_consume"] = ns
        root.deliveries += 1
        if root.state != DELIVERED:
            root.state = DELIVERED
            root.closed_ns = ns
            root["app_consume"] = ns

    @property
    def end_ns(self):
        """Where this record's root-level span closes."""
        if self.closed_ns is not None:
            return self.closed_ns
        last = self.get("app_consume")
        if last is not None:
            return last
        return max(self.values()) if self else 0.0

    def __repr__(self):
        return "MessageTrace(#%s %s/%s %s state=%s stamps=%s)" % (
            self.msg_id, self.stream, self.channel, self.datapath,
            self.state, list(self),
        )


class Span:
    """One rendered span: a named interval on a (host, datapath) track."""

    __slots__ = ("span_id", "parent_id", "name", "start_ns", "end_ns",
                 "track", "annotations", "msg_id")

    def __init__(self, span_id, parent_id, name, start_ns, end_ns, track,
                 annotations=(), msg_id=None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.track = track
        self.annotations = list(annotations)
        self.msg_id = msg_id

    @property
    def duration_ns(self):
        return self.end_ns - self.start_ns

    def __repr__(self):
        return "Span(%s %s [%.0f..%.0f] %s)" % (
            self.span_id, self.name, self.start_ns, self.end_ns, self.track,
        )


def stage_pairs(record):
    """``(stage_name, start_ns, end_ns)`` per consecutive stamp pair.

    Each stamp closes the stage that began at the previous stamp; the
    stage is named after the stamp that closes it (``runtime_tx`` covers
    emit -> runtime pickup, ``udp_tx_done`` covers the kernel tx stack,
    ...).  Non-monotonic pairs never occur on the real paths (departure
    stamps carry future times, in order), but are clamped defensively.
    """
    stages = []
    previous_key = None
    previous_ns = None
    for key, ns in record.items():
        if previous_key is not None:
            stages.append((key, previous_ns, max(previous_ns, ns)))
        previous_key, previous_ns = key, ns
    return stages


def spans_of(record, next_id=None):
    """Render one root record (and its children) into :class:`Span` objects.

    Returns a flat list; the first span is the root (whole message), child
    packet records contribute one container span plus one span per stage.
    """
    counter = next_id or iter(range(1, 1 << 30)).__next__
    spans = []
    root_track = (record.src_host, record.datapath)
    root_id = counter()
    start = record.get("emit_ns", record.end_ns)
    spans.append(Span(
        root_id, None,
        "msg %s %s/%s" % (record.msg_id, record.stream, record.channel),
        start, record.end_ns, root_track,
        annotations=record.annotations, msg_id=record.msg_id,
    ))
    for child in record.children:
        child_id = counter()
        child_start = child.get("emit_ns", start)
        spans.append(Span(
            child_id, root_id,
            "pkt %s -> %s" % (child.msg_id, child.dst),
            child_start, child.end_ns, (child.src_host, child.datapath),
            annotations=child.annotations, msg_id=child.msg_id,
        ))
        for name, stage_start, stage_end in stage_pairs(child):
            spans.append(Span(
                counter(), child_id, name, stage_start, stage_end,
                (child.src_host, child.datapath), msg_id=child.msg_id,
            ))
    return spans


class LifecycleTracer:
    """Collects message records, fault timeline events, and histograms.

    One tracer is shared by every runtime of a deployment (pass it via
    ``RuntimeConfig(tracer=...)``); it is intentionally engine-agnostic —
    all inputs arrive through the hook methods below.
    """

    def __init__(self, histogram_lo=10.0, histogram_hi=1e9,
                 buckets_per_decade=8):
        self.roots = []
        self.events = []      # (ns, kind, detail dict) timeline entries
        self._next_msg = 0
        self._hist_args = (histogram_lo, histogram_hi, buckets_per_decade)
        self.engine_observers = {}

    # -- record creation -------------------------------------------------------

    def begin(self, ns, *, stream=None, channel=None, size=None,
              datapath=None, host=None, app=None):
        """Open the root record for one emitted message."""
        self._next_msg += 1
        record = MessageTrace(
            self, self._next_msg, stream=stream, channel=channel, size=size,
            datapath=datapath, src_host=host, app=app,
        )
        record["emit_ns"] = ns
        self.roots.append(record)
        return record

    def fork(self, root, ns, datapath, dst):
        """Open a child record for one wire packet of ``root``."""
        child = MessageTrace(
            self, "%s.%d" % (root.msg_id, len(root.children) + 1),
            stream=root.stream, channel=root.channel, size=root.size,
            datapath=datapath, src_host=root.src_host, dst=dst,
            app=root.app, parent=root,
        )
        emit_ns = root.get("emit_ns")
        if emit_ns is not None:
            child["emit_ns"] = emit_ns
        root.children.append(child)
        return child

    # -- fault / failover timeline ---------------------------------------------

    def event(self, ns, kind, **detail):
        """Record a deployment-level timeline event (rendered as an
        instant in the Chrome trace)."""
        self.events.append((ns, kind, detail))

    def datapath_failed(self, ns, host, datapath, reason=""):
        """A datapath binding failed: close every open record still bound
        to it with a ``failover`` annotation (its in-flight copies are
        lost with the driver; the re-mapped stream's next messages will
        carry the survivor's name)."""
        self.event(ns, "datapath_failed", host=host, datapath=datapath,
                   reason=reason)
        for record in self.roots:
            if (record.state == OPEN and record.src_host == host
                    and record.datapath == datapath):
                record.annotate(ns, "failover", reason or "datapath failed")
                record.state = FAILED
                record.closed_ns = ns

    def datapath_restored(self, ns, host, datapath):
        self.event(ns, "datapath_restored", host=host, datapath=datapath)

    def failover_remapped(self, ns, host, datapath, remapped, stranded,
                          migrated):
        """The health monitor executed a re-map after detection."""
        self.event(
            ns, "failover_remap", host=host, datapath=datapath,
            remapped=len(remapped), stranded=len(stranded),
            migrated=migrated,
        )

    # -- derived views ---------------------------------------------------------

    def spans(self):
        """Every record rendered to :class:`Span` objects, in emit order."""
        counter = iter(range(1, 1 << 30)).__next__
        spans = []
        for record in self.roots:
            spans.extend(spans_of(record, next_id=counter))
        return spans

    def stage_histograms(self):
        """``{stage_name: LogHistogram}`` over all packet records, plus an
        ``e2e`` histogram of emit -> consume for delivered messages."""
        lo, hi, bpd = self._hist_args
        histograms = {}

        def hist(name):
            histogram = histograms.get(name)
            if histogram is None:
                histogram = histograms[name] = LogHistogram(lo, hi, bpd)
            return histogram

        for record in self.roots:
            if record.state == DELIVERED and "emit_ns" in record:
                hist("e2e").record(record.end_ns - record["emit_ns"])
            for child in record.children:
                for name, start, end in stage_pairs(child):
                    hist(name).record(end - start)
        return histograms

    def delivered(self):
        return [r for r in self.roots if r.state == DELIVERED]

    def summary(self):
        """Headline counts, handy for reports and assertions."""
        states = {}
        for record in self.roots:
            states[record.state] = states.get(record.state, 0) + 1
        return {
            "messages": len(self.roots),
            "states": states,
            "events": len(self.events),
            "packets": sum(len(r.children) for r in self.roots),
        }

    # -- engine hook -----------------------------------------------------------

    def attach_engine(self, sim, bucket_ns=50_000.0, label="sim"):
        """Install an :class:`EngineObserver` on ``sim`` (the engine then
        runs its observed loop; events/sec density lands in the Chrome
        trace as a counter track).  Returns the observer."""
        observer = EngineObserver(bucket_ns=bucket_ns)
        sim.observer = observer
        self.engine_observers[label] = observer
        return observer


class EngineObserver:
    """Counts executed events per virtual-time bucket.

    Installed via ``sim.observer``; the engine calls :meth:`on_event` once
    per executed event, only when an observer is present — the unobserved
    loops never see it.
    """

    __slots__ = ("bucket_ns", "counts", "events")

    def __init__(self, bucket_ns=50_000.0):
        self.bucket_ns = bucket_ns
        self.counts = {}
        self.events = 0

    def on_event(self, now):
        self.events += 1
        bucket = int(now // self.bucket_ns)
        counts = self.counts
        counts[bucket] = counts.get(bucket, 0) + 1

    def density(self):
        """``(bucket_start_ns, events)`` pairs in time order."""
        return [
            (bucket * self.bucket_ns, count)
            for bucket, count in sorted(self.counts.items())
        ]
