"""Per-datapath critical-path breakdown (the paper's stage-cost decomposition).

Where :mod:`repro.bench.breakdown` reproduces Fig. 6's four coarse RTT
components from raw stamps, this module works on :class:`~repro.obs.spans.
LifecycleTracer` records and splits the one-way path into the stages the
paper's cost model actually charges (``hw/profiles.py`` stage tables):

``runtime_tx``
    emit -> runtime pickup (client IPC ring + runtime wakeup).
``scheduler``
    QoS scheduler residency (enqueue -> dequeue; TSN gate waits show up
    here).
``tx_stack``
    datapath driver/stack TX — the syscall+copy cost for kernel UDP, the
    userspace stack + PMD for DPDK, AF_XDP redirect, or the RDMA post.
``nic_queue``
    NIC ring residency + serialization until wire departure.
``network``
    wire departure -> receiver ring arrival (propagation, and the switch
    on the cloud testbed).
``rx_stack``
    ring arrival -> runtime dispatch.  On INSANE flows the runtime's
    rx-pass drains the ring directly (charging the poll cost itself), so
    this is measured runtime-side rather than from per-datapath rx stamps.
``delivery``
    dispatch -> the application's consume (sink ring + client pickup).

The per-datapath report reproduces DESIGN.md's cost-table orderings:
kernel-UDP > XDP > DPDK > RDMA on the TX stack, kernel-UDP > DPDK > RDMA
on the RX side.
"""

from repro.obs.histogram import LogHistogram

#: Ordered critical-path stages: (name, start-key candidates, end-key
#: candidates).  The first present key on each side wins; a stage whose
#: keys are absent from a record is simply skipped (e.g. ``scheduler``
#: on a datapath that transmits inline).
STAGES = (
    ("runtime_tx", ("emit_ns",), ("runtime_tx",)),
    ("scheduler", ("sched_enqueue",), ("sched_dequeue",)),
    ("tx_stack", ("datapath_tx",),
     ("udp_tx_done", "dpdk_tx_done", "xdp_tx_done", "rdma_post_done")),
    ("nic_queue", ("nic_handoff",), ("nic_tx_departure",)),
    ("network", ("nic_tx_departure",), ("nic_rx_arrival",)),
    ("rx_stack", ("nic_rx_arrival",), ("runtime_rx",)),
    ("delivery", ("runtime_rx",), ("app_consume",)),
)

STAGE_NAMES = tuple(name for name, _starts, _ends in STAGES)


def _first_present(record, keys):
    for key in keys:
        value = record.get(key)
        if value is not None:
            return value
    return None


def critical_path(record):
    """Split one packet record into ``(stage, start_ns, end_ns, duration_ns)``.

    Accepts a packet (child) record, or a root — in which case its first
    packet child is used (the root itself carries only emit/consume).
    Stages whose stamps are missing are omitted; durations are clamped at
    zero so a defensive caller never sees negative stage costs.
    """
    children = getattr(record, "children", None)
    if children:
        record = children[0]
    path = []
    for name, start_keys, end_keys in STAGES:
        start = _first_present(record, start_keys)
        end = _first_present(record, end_keys)
        if start is None or end is None:
            continue
        path.append((name, start, end, max(0.0, end - start)))
    return path


def stage_costs(tracer, datapath=None):
    """``{stage: LogHistogram}`` over every packet record of ``tracer``.

    ``datapath`` (a name like ``"dpdk"``) restricts the aggregation to
    packets that travelled that datapath.
    """
    histograms = {}
    for root in tracer.roots:
        for child in root.children:
            if datapath is not None and child.datapath != datapath:
                continue
            for name, _start, _end, duration in critical_path(child):
                histogram = histograms.get(name)
                if histogram is None:
                    histogram = histograms[name] = LogHistogram()
                histogram.record(duration)
    return histograms


def _stage_stats(histogram):
    return {
        "count": histogram.count,
        "mean_ns": histogram.mean,
        "p50_ns": histogram.percentile(50),
        "p99_ns": histogram.percentile(99),
    }


def breakdown_report(tracers):
    """Build the per-datapath critical-path report.

    ``tracers`` maps a datapath label (``"kernel_udp"``, ``"dpdk"``, ...)
    to the :class:`LifecycleTracer` of its run.  Returns a JSON-friendly
    dict; render with :func:`format_breakdown`.
    """
    datapaths = {}
    for label, tracer in tracers.items():
        histograms = stage_costs(tracer)
        datapaths[label] = {
            "stages": {
                name: _stage_stats(histograms[name])
                for name in STAGE_NAMES
                if name in histograms
            },
            "summary": tracer.summary(),
        }
    return {"stage_order": list(STAGE_NAMES), "datapaths": datapaths}


def format_breakdown(report):
    """Render a :func:`breakdown_report` dict as an aligned text table
    (mean ns per stage, one column per datapath)."""
    labels = list(report["datapaths"])
    lines = []
    header = "%-12s" % "stage" + "".join("%14s" % label for label in labels)
    lines.append(header)
    lines.append("-" * len(header))
    for name in report["stage_order"]:
        row = ["%-12s" % name]
        present = False
        for label in labels:
            stats = report["datapaths"][label]["stages"].get(name)
            if stats is None:
                row.append("%14s" % "-")
            else:
                present = True
                row.append("%14.0f" % stats["mean_ns"])
        if present:
            lines.append("".join(row))
    totals = []
    for label in labels:
        stages = report["datapaths"][label]["stages"]
        totals.append(sum(stats["mean_ns"] for stats in stages.values()))
    lines.append("-" * len(header))
    lines.append("%-12s" % "total" + "".join("%14.0f" % t for t in totals))
    return "\n".join(lines)
