"""Prometheus histogram families for tracer stage latencies.

Extends the flat counter/gauge export of :mod:`repro.core.metrics` with
cumulative histogram families in the text exposition format:

    # HELP insane_stage_latency_ns Per-stage message latency.
    # TYPE insane_stage_latency_ns histogram
    insane_stage_latency_ns_bucket{stage="tx_stack",le="100"} 3
    ...
    insane_stage_latency_ns_bucket{stage="tx_stack",le="+Inf"} 17
    insane_stage_latency_ns_sum{stage="tx_stack"} 12345
    insane_stage_latency_ns_count{stage="tx_stack"} 17

The ``le`` buckets come straight from :meth:`LogHistogram.
cumulative_buckets`, so they are cumulative as the format requires.
"""

import math


def _escape(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(labels):
    return ",".join(
        '%s="%s"' % (key, _escape(labels[key])) for key in sorted(labels)
    )


def _format_le(edge):
    if edge == math.inf:
        return "+Inf"
    text = "%g" % edge
    return text


def histogram_lines(name, histogram, labels=None, help_text=None):
    """Render one :class:`LogHistogram` as a Prometheus histogram family.

    ``name`` is the family name (without the ``insane_`` prefix, which is
    added here for consistency with :mod:`repro.core.metrics`).
    """
    labels = dict(labels or {})
    family = "insane_%s" % name
    lines = [
        "# HELP %s %s" % (family, _escape(help_text or name.replace("_", " "))),
        "# TYPE %s histogram" % family,
    ]
    for edge, cumulative in histogram.cumulative_buckets():
        bucket_labels = dict(labels)
        bucket_labels["le"] = _format_le(edge)
        lines.append(
            "%s_bucket{%s} %d" % (family, _labels(bucket_labels), cumulative)
        )
    suffix = "{%s}" % _labels(labels) if labels else ""
    lines.append("%s_sum%s %s" % (family, suffix, histogram.total))
    lines.append("%s_count%s %d" % (family, suffix, histogram.count))
    return lines


def tracer_lines(tracer, family="stage_latency_ns"):
    """All stage histograms of a tracer as one multi-label family.

    Uses a single family with a ``stage`` label (the format forbids
    repeating ``# TYPE`` per label set), so one scrape carries the whole
    stage-cost decomposition.
    """
    histograms = tracer.stage_histograms()
    if not histograms:
        return []
    prefix = "insane_%s" % family
    lines = [
        "# HELP %s Per-stage message lifecycle latency (ns)." % prefix,
        "# TYPE %s histogram" % prefix,
    ]
    for stage in sorted(histograms):
        histogram = histograms[stage]
        labels = {"stage": stage}
        for edge, cumulative in histogram.cumulative_buckets():
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_le(edge)
            lines.append(
                "%s_bucket{%s} %d" % (prefix, _labels(bucket_labels), cumulative)
            )
        lines.append("%s_sum{%s} %s" % (prefix, _labels(labels), histogram.total))
        lines.append("%s_count{%s} %d" % (prefix, _labels(labels), histogram.count))
    return lines
