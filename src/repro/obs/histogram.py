"""Fixed-bucket log-scale histograms for latency aggregation.

The stock :class:`repro.simnet.Tally` keeps every sample so percentiles
are exact; that is fine for a 10-50k-sample benchmark series but wrong for
an always-on tracer that may observe millions of stage latencies.  A
:class:`LogHistogram` holds a fixed number of geometrically spaced buckets
— memory is bounded by construction, percentiles are approximate within
one bucket's relative width (``10^(1/buckets_per_decade)``).
"""

import math
from bisect import bisect_left


class LogHistogram:
    """A bounded-memory histogram with geometrically spaced buckets.

    ``lo``/``hi`` bound the expected value range (values outside land in
    underflow/overflow buckets, never lost); ``buckets_per_decade``
    controls resolution: 8 per decade means neighbouring bucket edges are
    ~33% apart, plenty for latency work spanning ns to seconds.
    """

    __slots__ = ("edges", "counts", "count", "total", "minimum", "maximum",
                 "_cumulative")

    def __init__(self, lo=10.0, hi=1e9, buckets_per_decade=8):
        if lo <= 0 or hi <= lo:
            raise ValueError("need 0 < lo < hi, got lo=%r hi=%r" % (lo, hi))
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        decades = math.log10(hi / lo)
        steps = max(1, int(math.ceil(decades * buckets_per_decade)))
        ratio = 10.0 ** (1.0 / buckets_per_decade)
        self.edges = [lo * ratio ** i for i in range(steps + 1)]
        # counts[i] covers (edges[i-1], edges[i]]; counts[0] additionally
        # absorbs everything <= lo and counts[-1] is the overflow bucket
        self.counts = [0] * (steps + 2)
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None
        # lazily built running-total view over counts; every mutation
        # (record/record_many/merge) drops it
        self._cumulative = None

    def record(self, value):
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        self._cumulative = None
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def record_many(self, value, weight):
        """Record ``weight`` identical samples in O(1).

        The fluid fidelity tier's aggregates use this: one cold-flow
        arrival stands for ``weight`` subscribers, so per-message work
        stays independent of the modelled population.
        """
        if weight <= 0:
            if weight == 0:
                return
            raise ValueError("weight must be >= 0, got %r" % (weight,))
        self.counts[bisect_left(self.edges, value)] += weight
        self.count += weight
        self.total += value * weight
        self._cumulative = None
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def _cumulative_view(self):
        cumulative = self._cumulative
        if cumulative is None:
            running = 0
            cumulative = []
            append = cumulative.append
            for bucket_count in self.counts:
                running += bucket_count
                append(running)
            self._cumulative = cumulative
        return cumulative

    def percentile(self, p):
        """Approximate percentile: linear interpolation inside the bucket
        the rank falls into, clamped to the observed min/max.

        Rank lookup bisects a cached running-total view of the buckets
        (rebuilt only after a mutation), so SLO evaluation querying many
        percentiles over a million-sample histogram does one O(buckets)
        pass instead of one per call.  Result values are bit-identical to
        the original linear scan — same bucket selection, same
        interpolation arithmetic (see the regression test).
        """
        if not self.count:
            return 0.0
        if p <= 0:
            return self.minimum
        if p >= 100:
            return self.maximum
        rank = (p / 100.0) * self.count
        cumulative = self._cumulative_view()
        # the scan stopped at the first bucket where the running total
        # reached rank; bisect_left finds exactly that index (a bucket the
        # running total skips over is empty and can never be leftmost)
        index = bisect_left(cumulative, rank)
        if index >= len(self.counts):
            return self.maximum
        bucket_count = self.counts[index]
        seen = cumulative[index - 1] if index else 0
        edges = self.edges
        # bucket bounds: underflow/overflow use the observed extremes
        low = edges[index - 1] if index >= 1 else self.minimum
        high = edges[index] if index < len(edges) else self.maximum
        low = max(low, self.minimum)
        high = min(high, self.maximum)
        frac = (rank - seen) / bucket_count
        return low + (high - low) * frac

    def _percentile_scan(self, p):
        """The pre-cache linear-scan percentile, kept as the oracle the
        cached path is regression-tested against (identical results)."""
        if not self.count:
            return 0.0
        if p <= 0:
            return self.minimum
        if p >= 100:
            return self.maximum
        rank = (p / 100.0) * self.count
        edges = self.edges
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if seen + bucket_count >= rank:
                low = edges[index - 1] if index >= 1 else self.minimum
                high = edges[index] if index < len(edges) else self.maximum
                low = max(low, self.minimum)
                high = min(high, self.maximum)
                frac = (rank - seen) / bucket_count
                return low + (high - low) * frac
            seen += bucket_count
        return self.maximum

    def merge(self, other):
        """Accumulate ``other`` into this histogram (same bucket layout)."""
        if other.edges != self.edges:
            raise ValueError("cannot merge histograms with different buckets")
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self._cumulative = None
        if other.minimum is not None:
            if self.minimum is None or other.minimum < self.minimum:
                self.minimum = other.minimum
        if other.maximum is not None:
            if self.maximum is None or other.maximum > self.maximum:
                self.maximum = other.maximum
        return self

    @classmethod
    def merged(cls, histograms):
        """A fresh histogram accumulating ``histograms`` (same layout).

        The window measurement layer folds per-window histograms into one
        stable-region aggregate with this; the inputs are left untouched.
        Raises ``ValueError`` on an empty iterable or mismatched bucket
        layouts — silently merging nothing (or the wrong buckets) would
        fabricate a statistic.
        """
        histograms = list(histograms)
        if not histograms:
            raise ValueError("cannot merge zero histograms")
        first = histograms[0]
        out = cls.__new__(cls)
        out.edges = list(first.edges)
        out.counts = [0] * len(first.counts)
        out.count = 0
        out.total = 0.0
        out.minimum = None
        out.maximum = None
        out._cumulative = None
        for histogram in histograms:
            out.merge(histogram)
        return out

    def cumulative_buckets(self):
        """``(upper_edge, cumulative_count)`` pairs, Prometheus-style.

        The final pair has ``upper_edge = inf`` and carries the total
        count; the underflow bucket folds into the first finite edge.
        """
        pairs = []
        running = 0
        for index, edge in enumerate(self.edges):
            running += self.counts[index]
            pairs.append((edge, running))
        pairs.append((math.inf, self.count))
        return pairs

    def to_dict(self):
        """A JSON-friendly snapshot (non-empty buckets only)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": [
                [self.edges[i] if i < len(self.edges) else None, c]
                for i, c in enumerate(self.counts)
                if c
            ],
        }

    def __repr__(self):
        return "LogHistogram(n=%d, mean=%.1f, p99=%.1f)" % (
            self.count, self.mean, self.percentile(99),
        )
