"""Chrome-trace (``chrome://tracing`` / Perfetto) JSON export.

Renders a :class:`~repro.obs.spans.LifecycleTracer` into the Trace Event
Format: one *process* per host, one *thread* (track) per datapath on that
host, complete (``"X"``) events for spans, instant (``"i"``) events for
fault/failover timeline entries and span annotations, and counter
(``"C"``) tracks for engine event density when an
:class:`~repro.obs.spans.EngineObserver` was attached.

Timestamps: the simulator clock is nanoseconds; the trace format wants
microseconds, so every ``ts``/``dur`` is ``ns / 1000.0``.  Events are
sorted by ``ts`` within each track so viewers (and the round-trip tests)
see monotonically non-decreasing timestamps per track.
"""

import json

_ANNOTATION_COLOURS = {
    "failover": "terrible",
    "drop": "bad",
    "migrated": "yellow",
}


def _track_ids(spans, tracer):
    """Assign stable pid/tid numbers: pid per host, tid per datapath."""
    hosts = []
    datapaths = {}
    for span in spans:
        host, datapath = span.track
        if host not in hosts:
            hosts.append(host)
        datapaths.setdefault(host, [])
        if datapath not in datapaths[host]:
            datapaths[host].append(datapath)
    for ns, kind, detail in tracer.events:
        host = detail.get("host")
        if host is not None and host not in hosts:
            hosts.append(host)
            datapaths.setdefault(host, [])
    pids = {host: index + 1 for index, host in enumerate(hosts)}
    tids = {
        (host, datapath): index + 1
        for host in hosts
        for index, datapath in enumerate(datapaths.get(host, []))
    }
    return pids, tids


def chrome_trace(tracer):
    """Build the Trace Event Format dict for one tracer (or several).

    ``tracer`` may be a single :class:`LifecycleTracer` or a mapping of
    ``{label: tracer}`` (e.g. one per datapath run); labels prefix the
    process names so the runs sit side by side in the viewer.
    """
    if isinstance(tracer, dict):
        merged = []
        offset = 0
        for label, sub in tracer.items():
            max_pid = 0
            for event in chrome_trace(sub)["traceEvents"]:
                pid = event.get("pid", 0)
                if pid:
                    # sub-traces number pids from 1 independently; offset
                    # so the runs' processes don't collide in the viewer
                    max_pid = max(max_pid, pid)
                    event["pid"] = pid + offset
                if event.get("ph") == "M" and event.get("name") == "process_name":
                    event["args"]["name"] = "%s %s" % (label, event["args"]["name"])
                merged.append(event)
            offset += max_pid
        return {"traceEvents": merged, "displayTimeUnit": "ns"}

    spans = tracer.spans()
    pids, tids = _track_ids(spans, tracer)
    events = []

    # metadata: name the tracks
    for host, pid in pids.items():
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": "host %s" % (host,)},
        })
    for (host, datapath), tid in tids.items():
        events.append({
            "ph": "M", "name": "thread_name", "pid": pids[host], "tid": tid,
            "args": {"name": "datapath %s" % (datapath,)},
        })

    # spans -> complete events, annotations -> instants on the same track
    track_events = {}
    for span in spans:
        host, datapath = span.track
        pid = pids[host]
        tid = tids.get((host, datapath), 0)
        bucket = track_events.setdefault((pid, tid), [])
        bucket.append({
            "ph": "X", "name": span.name, "cat": "lifecycle",
            "pid": pid, "tid": tid,
            "ts": span.start_ns / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "args": {"span_id": span.span_id, "parent_id": span.parent_id,
                     "msg_id": span.msg_id},
        })
        for ns, kind, detail in span.annotations:
            bucket.append({
                "ph": "i", "name": kind, "cat": "annotation", "s": "t",
                "pid": pid, "tid": tid, "ts": ns / 1000.0,
                "cname": _ANNOTATION_COLOURS.get(kind, "grey"),
                "args": {"detail": detail, "span_id": span.span_id},
            })

    # fault/failover timeline -> process-scoped instants
    for ns, kind, detail in tracer.events:
        host = detail.get("host")
        pid = pids.get(host, 0)
        bucket = track_events.setdefault((pid, 0), [])
        bucket.append({
            "ph": "i", "name": kind, "cat": "fault", "s": "p",
            "pid": pid, "tid": 0, "ts": ns / 1000.0,
            "cname": _ANNOTATION_COLOURS.get("failover", "grey"),
            "args": dict(detail),
        })

    # engine observers -> counter tracks
    for label, observer in tracer.engine_observers.items():
        bucket = track_events.setdefault(("counter", label), [])
        for start_ns, count in observer.density():
            bucket.append({
                "ph": "C", "name": "events/%s" % label, "pid": 0, "tid": 0,
                "ts": start_ns / 1000.0, "args": {"events": count},
            })

    for bucket in track_events.values():
        bucket.sort(key=lambda event: event["ts"])
        events.extend(bucket)
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(path, tracer):
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    document = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=None, separators=(",", ":"))
    return path
