"""Message-lifecycle observability for the INSANE reproduction.

The paper's headline results (Figs. 5-8) are per-stage *cost attributions*
— syscalls, copies, wakeups, poll loops — so this package makes the cost
structure directly inspectable instead of only visible as end-to-end
latency:

* :class:`LifecycleTracer` + :class:`MessageTrace` — span-based tracing
  that follows each message through emit -> QoS mapping -> scheduler ->
  tx ring -> datapath stack -> NIC queue -> link/switch -> rx -> sink
  delivery.  The hook points across the stack are attribute-load +
  ``None``-check only, so a run with tracing off executes the exact same
  event stream as before (the no-op-hook guarantee; see DESIGN.md §9).
* :class:`LogHistogram` — fixed-bucket log-scale latency histograms
  (bounded memory, unlike the keep-all-samples ``Tally``).
* :mod:`repro.obs.breakdown` — per-datapath critical-path reports
  reproducing the paper's stage-cost decomposition.
* :mod:`repro.obs.chrome` — Chrome-trace (``chrome://tracing`` /
  Perfetto) JSON export.
* :mod:`repro.obs.prometheus` — Prometheus histogram families on top of
  :mod:`repro.core.metrics`.
"""

from repro.obs.breakdown import breakdown_report, critical_path, stage_costs
from repro.obs.chrome import chrome_trace, write_chrome_trace
from repro.obs.histogram import LogHistogram
from repro.obs.breakdown import format_breakdown
from repro.obs.prometheus import histogram_lines, tracer_lines
from repro.obs.spans import (
    EngineObserver,
    LifecycleTracer,
    MessageTrace,
    Span,
    spans_of,
)

__all__ = [
    "EngineObserver",
    "LifecycleTracer",
    "LogHistogram",
    "MessageTrace",
    "Span",
    "breakdown_report",
    "chrome_trace",
    "critical_path",
    "format_breakdown",
    "histogram_lines",
    "spans_of",
    "tracer_lines",
    "stage_costs",
    "write_chrome_trace",
]
