"""Conservative null-message synchronization across city partitions.

Each partition runs its own :class:`~repro.simnet.engine.Simulator` over
its region subset of a generated city.  Partitions exchange two things
over ordered per-channel queues: *boundary frames* (trunk traffic whose
destination region lives elsewhere, shipped as compact descriptors and
re-materialized by the owner) and *clock announcements* (Chandy–Misra–
Bryant null messages).  A partition only executes events strictly below
``safe = min(in-channel clocks)``; its own announcements promise
``floor + lookahead`` where ``floor`` is the earliest thing it could
still do and the lookahead is the trunk propagation delay — strictly
positive, hence deadlock-free.

Bit-identical correctness, not statistical equivalence: a boundary
frame's arrival instant is the same float the serial run computes, the
model draws no rng during simulation, and per-flow phase offsets keep
event timestamps distinct city-wide, so event *timing* (the only thing
the records capture) is independent of execution interleaving.  The
merged records of a partitioned run therefore hash to the serial run's
digest exactly — :func:`check_partition_equivalence` asserts it.

Termination rides an explicit end-of-time horizon: the workload is
finite and every queue residency is ceiling-bounded, so
:func:`city_end_of_time` computes a provable upper bound on the last
event; once a partition's floor creeps past it, the partition announces
``+inf`` and finishes.  A real event at or beyond the horizon would be a
bound bug and raises instead of silently diverging.

Two transports run the identical protocol:

* ``"process"`` — one spawn worker per partition, ``multiprocessing``
  queues as channels (the headline: real parallel execution);
* ``"inline"`` — every partition driven round-robin in this process with
  deque channels (no nested-spawn restrictions, so sweep cells and tests
  can exercise the cut cheaply).
"""

import hashlib
import json
import math
import multiprocessing
import queue as queue_mod
import traceback
from collections import deque

from repro.dist.partition import partition_regions, region_owner
from repro.hw.generate import (
    CITY_EPOCH_NS,
    CityNetwork,
    city_plan,
    resolve_topology,
)
from repro.netstack import packet as packet_mod
from repro.netstack.packet import (
    WIRE_OVERHEAD,
    partition_seq_base,
    reset_packet_counter,
)
from repro.simnet import Simulator

_INF = float("inf")

#: how long (wall-clock seconds) a blocked partition waits on a peer
#: channel before declaring the run wedged — generous; the protocol
#: guarantees the awaited announcement is already in flight.
BLOCK_TIMEOUT_S = 120.0


def city_end_of_time(spec):
    """A provable upper bound on the last event instant of a city run.

    Every source is finite (``flows * messages`` pre-scheduled sends plus
    at most one rpc reply each), every queue residency is bounded (NIC
    backlog by total frames, switch queues by their admission ceilings,
    strict-priority starvation by total traffic through the port), so a
    generous sum of worst cases bounds the horizon.  Null-message clocks
    creep past this bound in ``horizon / lookahead`` exchanges and the
    run terminates.
    """
    from repro.hw.profiles import PROFILES

    profile = PROFILES[spec["profile"]]
    ser = (spec["size"] + WIRE_OVERHEAD) * 8.0 / profile.nic_bandwidth_gbps
    frames_total = spec["hosts"] * spec["flows_per_host"] * spec["messages"] * 2
    per_host = spec["flows_per_host"] * spec["messages"] * 4
    backlog = per_host * (ser + profile.nic_tx_dma_ns)
    hop = (
        spec["access_propagation_ns"] * 2.0
        + spec["trunk_propagation_ns"] * 2.0
        + spec["tor_forward_ns"] * 2.0
        + spec["core_forward_ns"]
        + spec["trunk_queue_ns"] * 2.0
        + profile.switch_port_queue_ns
        + frames_total * ser          # strict-priority starvation bound
        + profile.nic_rx_dma_ns * 2.0
        + profile.nic_tx_dma_ns
    )
    last_send = CITY_EPOCH_NS + spec["interval_ns"] * (spec["messages"] + 1)
    journey = backlog + hop
    return 4.0 * (last_send + 2.0 * journey + spec["service_ns"]) + 1e6


class PartitionRunner:
    """One partition's simulator plus its view of the sync protocol.

    Transport-agnostic: the drive loops (process worker, inline
    round-robin) own the channels and feed :meth:`receive` /
    :meth:`flush` with plain ``(clock, frames)`` messages.
    """

    def __init__(self, spec, index, assignment, plan=None):
        self.spec = spec
        self.index = index
        self.assignment = assignment
        self.owned = set(assignment[index])
        self.peers = [i for i in range(len(assignment)) if i != index]
        self.lookahead = float(spec["trunk_propagation_ns"])
        self.end_of_time = city_end_of_time(spec)
        self.seq_base = partition_seq_base(index)
        self._seq = self.seq_base
        self.sim = Simulator(seed=spec["seed"])
        self.net = CityNetwork(self.sim, spec, owned_regions=self.owned,
                               plan=plan)
        self.net.schedule_workload()
        self._owner = region_owner(assignment)
        #: latest clock announced BY each peer (our per-channel clocks)
        self.in_clock = {peer: 0.0 for peer in self.peers}
        #: latest clock we announced TO each peer (monotone)
        self.out_clock = {peer: 0.0 for peer in self.peers}
        self._outbuf = {peer: [] for peer in self.peers}
        self.done = False

    # -- packet-id bookkeeping (inline transport interleaves partitions
    # -- in one process; each keeps its own slice of the global counter)

    def activate_seq(self):
        packet_mod._packet_counter[0] = self._seq

    def save_seq(self):
        self._seq = packet_mod._packet_counter[0]

    @property
    def seq_last(self):
        return self._seq

    # -- protocol state ----------------------------------------------------

    def safe(self):
        """Highest time bound we may execute strictly below."""
        if not self.peers:
            return _INF
        bound = min(self.in_clock.values())
        return _INF if bound >= self.end_of_time else bound

    def floor(self):
        """Earliest instant this partition could still produce output."""
        nxt = self.sim.peek()
        if nxt is not None and nxt >= self.end_of_time:
            raise RuntimeError(
                "partition %d has an event at %.1f ns, at or past the "
                "end-of-time bound %.1f ns — city_end_of_time() is wrong"
                % (self.index, nxt, self.end_of_time)
            )
        bound = self.safe()
        if nxt is None:
            return bound
        return nxt if nxt < bound else bound

    def receive(self, peer, message):
        clock, frames = message
        for arrival, flow_id, k, is_reply in frames:
            if arrival < self.sim.now:
                raise RuntimeError(
                    "causality violated: partition %d received a frame "
                    "for %.3f ns from partition %d at local time %.3f ns"
                    % (self.index, arrival, peer, self.sim.now)
                )
            self.net.inject_boundary(arrival, flow_id, k, is_reply)
        if clock > self.in_clock[peer]:
            self.in_clock[peer] = clock

    def flush(self, send):
        """Route pending boundary exports and announce fresh clocks.

        ``send(peer, (clock, frames))`` delivers on the ordered channel.
        Returns True when anything was sent (the inline loop's progress
        signal — clock creep alone is progress, it is what unblocks
        peers).
        """
        for dst_region, arrival, flow_id, k, is_reply in \
                self.net.take_outbox():
            peer = self._owner[dst_region]
            self._outbuf[peer].append((arrival, flow_id, k, is_reply))
        here = self.floor()
        announce = _INF if here == _INF else here + self.lookahead
        sent = False
        for peer in self.peers:
            frames = self._outbuf[peer]
            clock = announce if announce > self.out_clock[peer] \
                else self.out_clock[peer]
            if not frames and clock == self.out_clock[peer]:
                continue
            self._outbuf[peer] = []
            self.out_clock[peer] = clock
            frames.sort()
            send(peer, (clock, frames))
            sent = True
        return sent

    def can_advance(self):
        nxt = self.sim.peek()
        return nxt is not None and nxt < self.safe()

    def advance(self):
        """Execute every local event strictly below the safe bound."""
        bound = self.safe()
        if bound == _INF:
            self.sim.run()
            return
        # run(until=) is inclusive; back off one ulp for strictly-below
        horizon = math.nextafter(bound, -_INF)
        if horizon > self.sim.now:
            self.sim.run(until=horizon)

    def finished(self):
        return self.sim.peek() is None and self.safe() == _INF

    def blocking_peer(self):
        """The peer whose channel clock gates progress (min, ties by id)."""
        return min(self.peers, key=lambda peer: (self.in_clock[peer], peer))

    def meta(self):
        return {
            "partition": self.index,
            "regions": sorted(self.owned),
            "hosts": len(self.net.hosts),
            "events": self.sim._executed,
            "now": self.sim.now,
            "seq_base": self.seq_base,
            "seq_last": self.seq_last,
        }


def _drive(runner, recv_nowait, recv_block, send):
    """The shared CMB loop: drain, flush, then advance or block."""
    while True:
        for peer in runner.peers:
            while True:
                message = recv_nowait(peer)
                if message is None:
                    break
                runner.receive(peer, message)
        runner.flush(send)
        if runner.finished():
            runner.done = True
            return
        if runner.can_advance():
            runner.activate_seq()
            try:
                runner.advance()
            finally:
                runner.save_seq()
            continue
        peer = runner.blocking_peer()
        runner.receive(peer, recv_block(peer))


# -- process transport -----------------------------------------------------


def _city_worker(spec, index, assignment, in_queues, out_queues,
                 result_queue):
    """Spawn-worker entry point: run one partition to completion."""
    try:
        reset_packet_counter(partition_seq_base(index))
        runner = PartitionRunner(spec, index, assignment)

        def recv_nowait(peer):
            try:
                return in_queues[peer].get_nowait()
            except queue_mod.Empty:
                return None

        def recv_block(peer):
            try:
                return in_queues[peer].get(timeout=BLOCK_TIMEOUT_S)
            except queue_mod.Empty:
                raise RuntimeError(
                    "partition %d waited %.0fs on partition %d with no "
                    "announcement — the run is wedged"
                    % (index, BLOCK_TIMEOUT_S, peer)
                )

        def send(peer, message):
            out_queues[peer].put(message)

        _drive(runner, recv_nowait, recv_block, send)
        result_queue.put(("result", index, runner.net.records(),
                          runner.meta()))
    except BaseException:
        result_queue.put(("error", index, traceback.format_exc()))


def _run_process(spec, assignment, mp_context="spawn"):
    ctx = multiprocessing.get_context(mp_context)
    count = len(assignment)
    channels = {
        (src, dst): ctx.Queue()
        for src in range(count)
        for dst in range(count)
        if src != dst
    }
    result_queue = ctx.Queue()
    workers = []
    for index in range(count):
        in_queues = {peer: channels[(peer, index)] for peer in range(count)
                     if peer != index}
        out_queues = {peer: channels[(index, peer)] for peer in range(count)
                      if peer != index}
        worker = ctx.Process(
            target=_city_worker,
            args=(spec, index, assignment, in_queues, out_queues,
                  result_queue),
            name="city-p%d" % index,
        )
        workers.append(worker)
    for worker in workers:
        worker.start()
    outcomes = {}
    try:
        while len(outcomes) < count:
            try:
                kind, index, *rest = result_queue.get(
                    timeout=BLOCK_TIMEOUT_S * 2
                )
            except queue_mod.Empty:
                raise RuntimeError(
                    "partitioned run wedged: %d of %d partitions reported"
                    % (len(outcomes), count)
                )
            if kind == "error":
                raise RuntimeError(
                    "partition %d failed:\n%s" % (index, rest[0])
                )
            outcomes[index] = rest
    finally:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        for worker in workers:
            worker.join()
    return [(outcomes[i][0], outcomes[i][1]) for i in range(count)]


# -- inline transport ------------------------------------------------------


def _run_inline(spec, assignment):
    """Every partition in this process, round-robin, deque channels.

    Same protocol, same per-partition simulators and packet-id slices —
    only the channels and the scheduler differ.  Safe inside daemonic
    pool workers, where the process transport could not spawn.
    """
    plan = city_plan(spec)
    runners = [PartitionRunner(spec, index, assignment, plan=plan)
               for index in range(len(assignment))]
    channels = {
        (src.index, dst.index): deque()
        for src in runners
        for dst in runners
        if src is not dst
    }
    while not all(runner.done for runner in runners):
        progressed = False
        for runner in runners:
            if runner.done:
                continue
            for peer in runner.peers:
                channel = channels[(peer, runner.index)]
                while channel:
                    runner.receive(peer, channel.popleft())
                    progressed = True
            if runner.flush(
                lambda peer, message, index=runner.index:
                    channels[(index, peer)].append(message)
            ):
                progressed = True
            if runner.finished():
                runner.done = True
                progressed = True
            elif runner.can_advance():
                runner.activate_seq()
                try:
                    runner.advance()
                finally:
                    runner.save_seq()
                progressed = True
        if not progressed:
            state = ", ".join(
                "p%d@%.1f" % (runner.index, runner.sim.now)
                for runner in runners
            )
            raise RuntimeError(
                "inline partitioned run deadlocked (%s) — the lookahead "
                "creep should make this impossible" % state
            )
    return [(runner.net.records(), runner.meta()) for runner in runners]


# -- records, merge, digest ------------------------------------------------


def city_digest(records):
    """sha256 over the canonical JSON of a city delivery/drop record."""
    text = json.dumps(records, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def merge_partition_records(parts):
    """Union per-partition records into one run-wide record.

    Every delivery and counter key is owned by exactly one partition
    (hosts, ToRs, and core trunk ports never straddle the cut), so the
    merge is a disjoint union; the core replicas' ``forwarded`` totals
    are the one summed quantity.  A duplicate key is a cut bug and
    raises.
    """
    deliveries = []
    counters = {}
    core_forwarded = 0
    for records in parts:
        deliveries.extend(records["deliveries"])
        for key, value in records["counters"].items():
            if key in counters:
                raise RuntimeError(
                    "counter %r reported by two partitions — the region "
                    "cut is not disjoint" % key
                )
            counters[key] = value
        core_forwarded += records["core_forwarded"]
    return {
        "deliveries": sorted(deliveries),
        "counters": counters,
        "core_forwarded": core_forwarded,
    }


def run_city_serial(topology):
    """The serial reference: the whole city in one simulator."""
    spec = resolve_topology(topology)
    reset_packet_counter()
    sim = Simulator(seed=spec["seed"])
    net = CityNetwork(sim, spec)
    net.schedule_workload()
    sim.run()
    if net.outbox:
        raise RuntimeError(
            "serial run exported %d boundary frames — it owns every "
            "region, so the cut logic is broken" % len(net.outbox)
        )
    records = net.records()
    return {
        "records": records,
        "digest": city_digest(records),
        "partitions": 1,
        "transport": "serial",
        "events": sim._executed,
        "now": sim.now,
        "per_partition": [],
    }


def run_city_partitioned(topology, partitions, transport="process",
                         mp_context="spawn"):
    """Run a generated city across ``partitions`` simulators.

    ``transport="process"`` spawns one worker process per partition;
    ``"inline"`` drives the same protocol in this process.  Either way
    the merged records — and therefore the digest — are bit-identical to
    :func:`run_city_serial` of the same spec.
    """
    spec = resolve_topology(topology)
    if partitions == 1:
        return run_city_serial(spec)
    assignment = partition_regions(spec["regions"], partitions)
    if transport == "process":
        outcomes = _run_process(spec, assignment, mp_context=mp_context)
    elif transport == "inline":
        outcomes = _run_inline(spec, assignment)
    else:
        raise ValueError("unknown transport %r (process or inline)"
                         % (transport,))
    merged = merge_partition_records([records for records, _ in outcomes])
    metas = [meta for _, meta in outcomes]
    return {
        "records": merged,
        "digest": city_digest(merged),
        "partitions": partitions,
        "transport": transport,
        "events": sum(meta["events"] for meta in metas),
        "now": max(meta["now"] for meta in metas),
        "per_partition": metas,
    }


def check_partition_equivalence(topology, partitions=(2,),
                                transport="process"):
    """Serial-vs-partitioned digest equality for each partition count.

    Returns ``(problems, details)``: ``problems`` is a list of
    human-readable strings (empty = equivalent), ``details`` the serial
    and per-count run summaries (records stripped, digests kept).
    """
    spec = resolve_topology(topology)
    serial = run_city_serial(spec)
    details = {
        "spec": spec,
        "serial": _summary(serial),
        "partitioned": [],
    }
    problems = []
    for count in partitions:
        run = run_city_partitioned(spec, count, transport=transport)
        details["partitioned"].append(_summary(run))
        if run["digest"] != serial["digest"]:
            problems.append(
                "%d-partition %s run diverged from serial: %s != %s"
                % (count, transport, run["digest"][:16],
                   serial["digest"][:16])
            )
        bases = [meta["seq_base"] for meta in run["per_partition"]]
        if len(set(bases)) != len(bases):
            problems.append(
                "%d-partition run reused a packet-id base" % count
            )
    return problems, details


def _summary(run):
    out = {key: value for key, value in run.items() if key != "records"}
    out["delivered"] = len(run["records"]["deliveries"])
    return out


# -- sweep-cell entry point ------------------------------------------------


def run_city_cell(topology="smoke64", partitions=1, datapath=None, seed=0):
    """``bench.city`` cell: one city run, summarized for sweeps.

    Partitioned cells use the inline transport — a sweep worker may
    itself be a daemonic pool process, which cannot spawn children; the
    protocol (and the digest) is the same either way.
    """
    spec = resolve_topology(topology)
    overrides = {"seed": seed}
    if datapath is not None:
        overrides["datapath"] = datapath
    spec = resolve_topology(dict(spec, **overrides))
    partitions = int(partitions)
    if partitions <= 1:
        run = run_city_serial(spec)
    else:
        run = run_city_partitioned(spec, partitions, transport="inline")
    records = run["records"]
    plan = city_plan(spec)
    paced = []
    rpc = []
    for flow_id, k, delivered in records["deliveries"]:
        flow = plan["flows"][flow_id]
        base = CITY_EPOCH_NS + flow["phase_ns"] + k * spec["interval_ns"]
        sample = delivered - base
        (paced if flow["kind"] == "paced" else rpc).append(sample)
    expected = len(plan["flows"]) * spec["messages"]
    delivered = len(records["deliveries"])
    counters = records["counters"]
    return {
        "topology": topology if isinstance(topology, str) else "custom",
        "hosts": spec["hosts"],
        "regions": spec["regions"],
        "classes": spec["classes"],
        "datapath": spec["datapath"],
        "partitions": partitions,
        "transport": run["transport"],
        "digest": run["digest"],
        "events": run["events"],
        "delivered": delivered,
        "expected": expected,
        "delivery_ratio": delivered / expected if expected else 0.0,
        "dropped": sum(value for key, value in counters.items()
                       if key.endswith("dropped")),
        "core_forwarded": records["core_forwarded"],
        "latency": _block(paced),
        "rpc_rtt": _block(rpc),
    }


def _block(samples):
    if not samples:
        return {"count": 0, "mean_ns": 0.0, "p50_ns": 0.0, "p99_ns": 0.0,
                "max_ns": 0.0}
    ordered = sorted(samples)
    count = len(ordered)
    return {
        "count": count,
        "mean_ns": sum(ordered) / count,
        "p50_ns": ordered[count // 2],
        "p99_ns": ordered[min(count - 1, (count * 99) // 100)],
        "max_ns": ordered[-1],
    }
