"""Cutting a generated city into per-partition region subsets.

The cut runs along region boundaries: a partition owns whole regions —
their hosts, their ToR, and the core trunk ports facing them — so the
only traffic crossing a cut is inter-region trunk traffic, which carries
the full trunk propagation delay.  That delay is the conservative
lookahead of :mod:`repro.dist.sync`; cutting anywhere finer (inside a
region) would shrink the lookahead to the access-link delay and drown
the protocol in null messages.
"""


def _topology_error(message):
    from repro.core.errors import TopologyError

    return TopologyError(message)


def partition_regions(regions, partitions):
    """Assign ``regions`` region indices to ``partitions`` contiguous blocks.

    Returns a list of sorted region-index lists, one per partition, sizes
    differing by at most one.  Contiguity keeps the assignment a pure
    function of the two counts — no rng, no spec content — so every
    partition (and the serial reference) derives the identical cut.
    """
    if not isinstance(partitions, int) or isinstance(partitions, bool):
        raise _topology_error("partitions must be an integer, got %r"
                              % (partitions,))
    if partitions < 1:
        raise _topology_error("partitions must be >= 1, got %d" % partitions)
    if partitions > regions:
        raise _topology_error(
            "cannot cut %d region(s) into %d partitions — a partition "
            "must own at least one whole region" % (regions, partitions)
        )
    base, extra = divmod(regions, partitions)
    out = []
    cursor = 0
    for index in range(partitions):
        count = base + (1 if index < extra else 0)
        out.append(list(range(cursor, cursor + count)))
        cursor += count
    return out


def region_owner(assignment):
    """region index -> partition index, from a :func:`partition_regions`
    assignment (or any disjoint region grouping)."""
    owner = {}
    for index, regions in enumerate(assignment):
        for region in regions:
            if region in owner:
                raise _topology_error(
                    "region %d assigned to partitions %d and %d"
                    % (region, owner[region], index)
                )
            owner[region] = index
    return owner
