"""Space-partitioned conservative-sync execution of generated cities.

One :class:`~repro.simnet.engine.Simulator` per partition, each owning a
region-subset of a generated city (:mod:`repro.hw.generate`), synchronized
with the Chandy–Misra–Bryant null-message protocol.  The lookahead is the
city's inter-region trunk propagation delay, so the protocol is
deadlock-free by construction, and the correctness contract is exact:
the merged delivery/drop record of a partitioned run is **bit-identical**
to the serial run of the same spec (``insane validate partitioned``
checks it, as does the ``partition-smoke`` CI job).
"""

from repro.dist.partition import partition_regions, region_owner
from repro.dist.sync import (
    check_partition_equivalence,
    city_digest,
    merge_partition_records,
    run_city_cell,
    run_city_partitioned,
    run_city_serial,
)

__all__ = [
    "check_partition_equivalence",
    "city_digest",
    "merge_partition_records",
    "partition_regions",
    "region_owner",
    "run_city_cell",
    "run_city_partitioned",
    "run_city_serial",
]
