"""The shared option surface of every ``insane`` sub-command.

Each sub-CLI (bench, validate, scenario) owns its parser, but the
execution knobs — ``--seed``, ``--workers``, ``--no-cache``,
``--cache-dir``, ``--json`` — mean the same thing everywhere, so they
are declared once here and grafted onto each parser.  Keeping one
definition guarantees the umbrella ``insane`` command and the deprecated
``insane-bench``/``insane-validate`` aliases stay flag-compatible: a
script written against one spelling keeps working under the other.
"""

import argparse


def add_execution_options(parser, seed=0, workers=1, workers_help=None,
                          json_help=None):
    """Add the shared execution options to ``parser``.

    ``seed=None`` registers ``--seed`` with no default, for commands
    where the seed normally comes from elsewhere (a scenario file) and
    the flag is an explicit override.
    """
    parser.add_argument("--seed", type=int, default=seed,
                        help="base rng seed"
                             if seed is not None else
                             "override every scenario's own seed")
    parser.add_argument(
        "--workers", type=int, default=workers, metavar="N",
        help=workers_help or "shard sweep cells across N worker processes "
                             "(results are bit-identical at any worker "
                             "count)",
    )
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every sweep cell instead of reusing "
                             "the digest-keyed result cache")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result-cache directory (default: "
                             "./.insane-cache or $INSANE_CACHE_DIR)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help=json_help or "write machine-readable results "
                                          "to a JSON file")
    return parser


def execution_parent(**kwargs):
    """The shared options as an ``argparse`` parent parser."""
    parent = argparse.ArgumentParser(add_help=False)
    add_execution_options(parent, **kwargs)
    return parent


def make_cache(args):
    """The :class:`~repro.parallel.ResultCache` the parsed args ask for.

    ``--no-cache`` maps to ``None`` (the executor then recomputes every
    cell), anything else to a cache rooted at ``--cache-dir``.
    """
    from repro.parallel import ResultCache

    if getattr(args, "no_cache", False):
        return None
    return ResultCache(root=getattr(args, "cache_dir", None))
