"""The ``insane`` umbrella command line.

One entry point in front of every subsystem::

    insane bench fig7 --profile cloud     # tables and figures
    insane validate differential --n 50   # engine oracles and fuzzing
    insane scenario run corpus/           # scenario DSL + SLO verdicts
    insane profile --workload fig8a_streaming

Sub-command argv is forwarded *verbatim* to the existing sub-CLI mains,
so ``insane bench ...`` is byte-identical on stdout to the historical
``insane-bench ...`` (and likewise for validate).  The old entry points
remain as thin deprecated aliases — :func:`bench_alias` and
:func:`validate_alias` — that print a one-line notice on stderr and
forward; scripts keep working, stdout parsers never notice.
"""

import importlib
import sys

#: sub-command -> (module with a ``main(argv)``, one-line description).
COMMANDS = {
    "bench": ("repro.bench.cli",
              "regenerate the paper's tables and figures"),
    "validate": ("repro.validate.cli",
                 "differential validation, fuzzing, golden corpus"),
    "scenario": ("repro.scenario.cli",
                 "run scenario suites and evaluate SLOs"),
}


def _usage():
    lines = [
        "usage: insane COMMAND [ARGS...]",
        "",
        "Reproduction toolkit for INSANE (Middleware '23).  Commands:",
        "",
    ]
    for name in sorted(COMMANDS):
        lines.append("  %-10s %s" % (name, COMMANDS[name][1]))
    lines.append("  %-10s %s" % ("profile",
                                 "cProfile one perf workload "
                                 "(= bench profile)"))
    lines.append("")
    lines.append("Run `insane COMMAND --help` for command options.")
    return "\n".join(lines)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(_usage(), file=sys.stderr)
        return 2
    command, rest = argv[0], argv[1:]
    if command in ("-h", "--help", "help"):
        print(_usage())
        return 0
    if command == "profile":
        # shorthand: `insane profile ...` == `insane bench profile ...`
        command, rest = "bench", ["profile"] + rest
    entry = COMMANDS.get(command)
    if entry is None:
        print("insane: unknown command %r\n" % command, file=sys.stderr)
        print(_usage(), file=sys.stderr)
        return 2
    module = importlib.import_module(entry[0])
    return module.main(rest)


def _alias(old_name, command, argv):
    sys.stderr.write(
        "%s: deprecated alias; use `insane %s ...` instead\n"
        % (old_name, command)
    )
    sys.stderr.flush()
    argv = list(sys.argv[1:] if argv is None else argv)
    return main([command] + argv)


def bench_alias(argv=None):
    """Deprecated ``insane-bench`` entry point; forwards to ``insane bench``."""
    return _alias("insane-bench", "bench", argv)


def validate_alias(argv=None):
    """Deprecated ``insane-validate`` entry point; forwards to ``insane validate``."""
    return _alias("insane-validate", "validate", argv)
