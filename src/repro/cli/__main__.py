"""``python -m repro.cli`` == the ``insane`` umbrella command."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
