"""Content-addressed on-disk cache for sweep-cell results.

A cell's cache key is the sha256 of three facts, any of which changing
must invalidate the entry:

* the cell itself (canonical JSON — kind + every parameter);
* the hardware profile content it runs on (digested from the profile's
  full dataclass form, so *editing* a stage cost misses even though the
  profile name stayed ``"local"``);
* the package version (plus a cache schema version, so a payload-format
  change never deserializes stale shapes).

Entries are one JSON file per key under ``<root>/<key[:2]>/<key>.json``,
written atomically (tmp + ``os.replace``) so a crashed run never leaves a
truncated entry — a corrupt or unreadable file is treated as a miss and
overwritten.  The default root is ``.insane-cache/`` in the working
directory (override with ``$INSANE_CACHE_DIR``); it is git-ignored.
"""

import dataclasses
import hashlib
import json
import os

import repro
from repro.hw.profiles import PROFILES
from repro.simnet.cell import cell_key

#: bump when the cached payload format changes shape incompatibly.
CACHE_SCHEMA = 1

#: environment override for the cache root directory.
CACHE_DIR_ENV = "INSANE_CACHE_DIR"

_DEFAULT_DIRNAME = ".insane-cache"


def default_cache_root():
    """The cache directory: ``$INSANE_CACHE_DIR`` or ``./.insane-cache``."""
    return os.environ.get(CACHE_DIR_ENV) or os.path.join(
        os.getcwd(), _DEFAULT_DIRNAME
    )


def profile_digest(profile):
    """sha256 over a profile's complete content (not just its name)."""
    record = dataclasses.asdict(profile)
    text = json.dumps(record, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(text.encode()).hexdigest()


def cache_key(cell, profile=None, version=None):
    """The content-addressed key of one cell.

    ``profile`` defaults to the profile named by the cell's
    ``params["profile"]`` (falling back to ``"local"``, the testbed every
    profile-less experiment builds); pass a
    :class:`~repro.hw.profiles.TestbedProfile` explicitly for perturbed
    or ad-hoc profiles.

    Cells with a ``params["topology"]`` (generated-city cells) fold the
    *resolved* spec content into the key: a preset named ``"smoke64"``
    hashes by what the preset currently expands to, so editing the
    generator spec invalidates every entry keyed through the old
    content — the cell JSON alone would look unchanged and serve stale
    hits.  The spec also names the profile such cells actually run on.
    """
    params = cell.get("params") or {}
    topology = params.get("topology")
    topo_digest = None
    if topology is not None:
        from repro.hw.generate import resolve_topology, topology_digest

        spec = resolve_topology(topology)
        topo_digest = topology_digest(spec)
        if profile is None:
            profile = PROFILES[spec["profile"]]
    if profile is None:
        name = params.get("profile", "local")
        profile = PROFILES[name]
    h = hashlib.sha256()
    h.update(cell_key(cell).encode())
    h.update(b"\x00")
    h.update(profile_digest(profile).encode())
    h.update(b"\x00")
    if topo_digest is not None:
        h.update(topo_digest.encode())
        h.update(b"\x00")
    h.update((version or repro.__version__).encode())
    h.update(b"\x00")
    h.update(str(CACHE_SCHEMA).encode())
    return h.hexdigest()


class ResultCache:
    """A digest-keyed result store with hit/miss accounting."""

    def __init__(self, root=None):
        self.root = root or default_cache_root()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path(self, key):
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key):
        """The cached entry for ``key``, or ``None`` (counted as a miss)."""
        path = self.path(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key, cell, payload):
        """Store ``payload`` for ``key``; atomic, last-writer-wins."""
        entry = {
            "key": key,
            "cell": cell,
            "schema": CACHE_SCHEMA,
            "payload": payload,
        }
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp.%d" % os.getpid()
        with open(tmp, "w") as handle:
            json.dump(entry, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        self.stores += 1
        return entry

    def stats(self):
        lookups = self.hits + self.misses
        return {
            "root": self.root,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }
