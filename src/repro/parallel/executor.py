"""The deterministic parallel sweep executor.

Shards independent experiment cells across worker processes and merges
their payloads into an order that is a pure function of the cells
themselves — **sorted by cell key, never by completion order** — so the
merged report (and any digest over it) is byte-identical at any worker
count.  That invariant, checked end-to-end by
:func:`repro.validate.parallel.check_parallel_equivalence`, is what makes
parallelism safe to turn on: Becker et al. ("Network Emulation in
Large-Scale Virtual Edge Testbeds") document how parallel execution
silently changes results when equivalence is not enforced.

Workers are started with the ``spawn`` method (never ``fork``): each one
imports the package fresh, so no parent-process module state — heaps,
rng, counters — can leak in.  Every cell then goes through
:func:`repro.simnet.cell.run_cell`, which builds an isolated simulator
and resets the known process-globals, so a long-lived worker running many
cells behaves exactly like a fresh process per cell.

An optional :class:`~repro.parallel.cache.ResultCache` short-circuits
cells whose content-addressed key already has a stored payload; cached
and freshly-executed cells are indistinguishable in the merged output.
"""

import json
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from hashlib import sha256
from typing import List

from repro.parallel.cache import cache_key
from repro.simnet.cell import CELL_RUNNERS, cell_key, run_cell


def _execute_cell(cell_json, runners=None):
    """Worker-side entrypoint (module-level so it pickles under spawn).

    ``runners`` is the parent's registry snapshot — spawn-started workers
    import a pristine :data:`~repro.simnet.cell.CELL_RUNNERS`, so kinds
    registered at runtime (tests, plugins) are re-registered here.  The
    snapshot is all strings, so it pickles trivially.
    """
    if runners:
        CELL_RUNNERS.update(runners)
    return run_cell(json.loads(cell_json))


@dataclass
class CellResult:
    """One merged cell: its identity, payload, and provenance."""

    key: str
    cell: dict
    payload: object
    cached: bool


@dataclass
class SweepResult:
    """The deterministic merge of one sweep."""

    results: List[CellResult] = field(default_factory=list)
    workers: int = 1
    executed: int = 0
    cache_hits: int = 0

    def payloads(self):
        """Cell payloads in key order."""
        return [result.payload for result in self.results]

    def by_key(self):
        """Mapping of cell key -> payload."""
        return {result.key: result.payload for result in self.results}

    def payload_for(self, cell):
        """The payload of ``cell`` (KeyError if it was not in the sweep)."""
        return self.by_key()[cell_key(cell)]

    def merged_digest(self):
        """sha256 over the key-ordered ``(key, payload)`` stream.

        Identical digests at ``workers=1`` and ``workers=N`` is the
        executor's determinism contract; cache hits do not move it.
        """
        h = sha256()
        for result in self.results:
            h.update(result.key.encode())
            h.update(b"\x00")
            h.update(json.dumps(result.payload, sort_keys=True,
                                separators=(",", ":"),
                                default=repr).encode())
            h.update(b"\n")
        return h.hexdigest()

    def hit_rate(self):
        total = len(self.results)
        return self.cache_hits / total if total else 0.0

    def to_report(self, kind="sweep", **meta):
        """The sweep as a :class:`repro.report.RunReport`.

        ``data`` carries the key-ordered cells and the merged digest (the
        digest-compared shape, identical at any worker count); execution
        provenance — worker count, cache hits, per-cell cached flags —
        goes in the non-compared ``meta`` block.
        """
        from repro.report import RunReport

        return RunReport(
            kind=kind,
            data={
                "cells": [
                    {"key": result.key, "payload": result.payload}
                    for result in self.results
                ],
                "merged_digest": self.merged_digest(),
            },
            meta=dict(
                meta,
                workers=self.workers,
                executed=self.executed,
                cache_hits=self.cache_hits,
                cached_keys=sorted(
                    result.key for result in self.results if result.cached
                ),
            ),
        )


class SweepExecutor:
    """Run independent experiment cells, serially or across processes.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (the default) executes inline — same
        :func:`~repro.simnet.cell.run_cell` path, same merge, no pool —
        so the serial run is the reference the parallel run must equal.
    cache:
        Optional :class:`~repro.parallel.cache.ResultCache`; ``None``
        disables caching entirely (the ``--no-cache`` surface).
    """

    def __init__(self, workers=1, cache=None, mp_context="spawn"):
        if workers < 1:
            raise ValueError("workers must be >= 1, got %r" % (workers,))
        self.workers = workers
        self.cache = cache
        self.mp_context = mp_context

    def run(self, cells):
        """Execute ``cells``; returns a :class:`SweepResult` in key order.

        Duplicate cells (same canonical key) are executed once and merged
        once.  Execution order is key order in the serial case and
        completion order in the parallel case — but the *merge* is always
        key order, so the two are indistinguishable from the outside.
        """
        unique = {}
        for cell in cells:
            unique.setdefault(cell_key(cell), cell)
        ordered = sorted(unique.items())

        sweep = SweepResult(workers=self.workers)
        pending = []
        payloads = {}
        cached = {}
        for key, cell in ordered:
            if self.cache is not None:
                entry = self.cache.get(cache_key(cell))
                if entry is not None:
                    payloads[key] = entry["payload"]
                    cached[key] = True
                    sweep.cache_hits += 1
                    continue
            pending.append((key, cell))

        if pending:
            if self.workers == 1:
                for key, cell in pending:
                    payloads[key] = run_cell(cell)
            else:
                context = multiprocessing.get_context(self.mp_context)
                runners = dict(CELL_RUNNERS)
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(pending)),
                    mp_context=context,
                ) as pool:
                    futures = {
                        pool.submit(_execute_cell, key, runners): key
                        for key, _cell in pending
                    }
                    for future in as_completed(futures):
                        payloads[futures[future]] = future.result()
            sweep.executed += len(pending)
            if self.cache is not None:
                for key, cell in pending:
                    self.cache.put(cache_key(cell), cell, payloads[key])

        for key, cell in ordered:
            sweep.results.append(CellResult(
                key=key, cell=cell, payload=payloads[key],
                cached=cached.get(key, False),
            ))
        return sweep


def run_sweep(cells, workers=1, cache=None):
    """One-shot convenience wrapper around :class:`SweepExecutor`."""
    return SweepExecutor(workers=workers, cache=cache).run(cells)
