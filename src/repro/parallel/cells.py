"""Cell-construction helpers: grids of experiment points as cell lists.

Everything here is a pure function from parameters to plain dicts —
building a grid never touches the simulator, so cell lists are cheap to
construct, hash, and ship across the spawn boundary.
"""

from repro.simnet.cell import cell_key


def make_cell(kind, **params):
    """One cell: ``{"kind": ..., "params": {...}}``.

    Raises immediately if the params are not canonically JSON-able, so a
    bad cell fails at construction time, not inside a worker.
    """
    cell = {"kind": kind, "params": params}
    cell_key(cell)
    return cell


def grid_cells(kind, axes, **common):
    """The cartesian product of ``axes`` as a cell list.

    ``axes`` is an ordered list of ``(param_name, values)`` pairs;
    ``common`` params are shared by every cell.  Order of the returned
    list is row-major over the axes, but the executor re-orders by cell
    key anyway — grid order is only a convenience for display code.
    """
    cells = [dict(common)]
    for name, values in axes:
        cells = [dict(base, **{name: value}) for base in cells for value in values]
    return [make_cell(kind, **params) for params in cells]
