"""Deterministic parallel sweep execution with a digest-keyed result cache.

The package shards independent experiment cells — figure-grid points,
fault scenarios, fuzz batches, differential workloads — across spawned
worker processes and merges results in cell-key order, so a sweep's
output (and its sha256 digest) is identical at any worker count.  See
DESIGN.md §10 for the sharding unit, seed derivation, cache key, and the
determinism guarantee.
"""

from repro.parallel.cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA,
    ResultCache,
    cache_key,
    default_cache_root,
    profile_digest,
)
from repro.parallel.cells import grid_cells, make_cell
from repro.parallel.executor import (
    CellResult,
    SweepExecutor,
    SweepResult,
    run_sweep,
)
from repro.simnet.cell import cell_key, derive_seed, register_cell_kind, run_cell

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "CellResult",
    "ResultCache",
    "SweepExecutor",
    "SweepResult",
    "cache_key",
    "cell_key",
    "default_cache_root",
    "derive_seed",
    "grid_cells",
    "make_cell",
    "profile_digest",
    "register_cell_kind",
    "run_cell",
    "run_sweep",
]
