"""Network Acceleration as a Service: containers on an edge cloud.

The paper's §8 ("Cloud integration") sketches the deployment model this
package implements: application components run in isolated *containers*
that attach to the co-located INSANE runtime over shared memory, gaining
"transparent access to the network acceleration options available at the
specific deployment site" — and can be stopped, moved, and restarted on a
different site by an orchestrator, with INSANE re-binding their streams to
whatever that site offers.
"""

from repro.cloud.container import Container, ContainerSpec, ContainerState
from repro.cloud.orchestrator import EdgeOrchestrator, PlacementError
from repro.cloud.placement import RegionPlacer

__all__ = [
    "Container",
    "ContainerSpec",
    "ContainerState",
    "EdgeOrchestrator",
    "PlacementError",
    "RegionPlacer",
]
