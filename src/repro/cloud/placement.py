"""Deterministic service placement over generated city regions.

The heavyweight :class:`~repro.cloud.orchestrator.EdgeOrchestrator` places
live containers on running INSANE deployments; this module is its
build-time counterpart for the generated city fabrics of
:mod:`repro.hw.generate`: given the candidate hosts of a region (plain
descriptor dicts, no simulator required), pick where each service
instance lands — least-loaded, acceleration-aware, capacity-bounded.

Everything here is a pure function of its inputs (ties broken by host
name), so the generator's placement is part of the topology plan: same
``(seed, spec)``, same placement, same digests.
"""


class RegionPlacer:
    """Least-loaded, acceleration-aware placement over candidate hosts.

    Candidates are plain dicts with at least ``name``; ``accelerated``
    (bool) marks hosts exposing a kernel-bypass datapath.  A service that
    ``requires_acceleration`` only lands on accelerated hosts; among the
    eligible, the host with the fewest placed services wins, ties broken
    by name so the outcome is order-independent.
    """

    def __init__(self, capacity_per_host=4):
        if capacity_per_host < 1:
            raise ValueError("capacity_per_host must be >= 1")
        self.capacity_per_host = capacity_per_host
        self._load = {}

    def load(self, host):
        return self._load.get(host["name"], 0)

    def candidates_for(self, hosts, requires_acceleration=False):
        eligible = []
        for host in hosts:
            if self.load(host) >= self.capacity_per_host:
                continue
            if requires_acceleration and not host.get("accelerated", False):
                continue
            eligible.append(host)
        return eligible

    def place(self, service, hosts, requires_acceleration=False):
        """Place one ``service`` (a name) on the best of ``hosts``.

        Raises :class:`~repro.core.errors.TopologyError` when no host is
        eligible — an unplaceable service in a generated spec is a build
        bug, consistent with the switch table checks.
        """
        eligible = self.candidates_for(
            hosts, requires_acceleration=requires_acceleration
        )
        if not eligible:
            from repro.core.errors import TopologyError

            raise TopologyError(
                "no host can take service %r (candidates: %d, "
                "requires_acceleration=%s)"
                % (service, len(hosts), requires_acceleration)
            )
        chosen = min(eligible, key=lambda host: (self.load(host),
                                                 host["name"]))
        self._load[chosen["name"]] = self.load(chosen) + 1
        return chosen

    def placements(self):
        """host name -> placed-service count (for tests and reports)."""
        return dict(self._load)
