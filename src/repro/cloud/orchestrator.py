"""The edge orchestrator: placement and live relocation of containers."""

from repro.cloud.container import ContainerState
from repro.core.qos import Acceleration


class PlacementError(RuntimeError):
    """No node satisfies a container's requirements."""


class EdgeOrchestrator:
    """Places containers on an :class:`~repro.core.runtime.InsaneDeployment`.

    Placement policy: a container that *requires* acceleration only goes to
    nodes exposing an accelerated datapath; among the candidates, the one
    with the fewest running containers wins (least-loaded).
    """

    def __init__(self, deployment, capacity_per_node=16):
        self.deployment = deployment
        self.capacity_per_node = capacity_per_node
        self.containers = {}
        self._placements = {name: [] for name in deployment.runtimes}

    # -- queries ------------------------------------------------------------

    def nodes(self):
        return list(self.deployment.runtimes.values())

    def load(self, runtime):
        return len(self._placements[runtime.host.name])

    def accelerated(self, runtime):
        available = runtime.available_datapaths()
        return bool(available & {"dpdk", "xdp", "rdma"})

    # -- placement -----------------------------------------------------------

    def candidates_for(self, spec):
        nodes = []
        for runtime in self.nodes():
            if self.load(runtime) >= self.capacity_per_node:
                continue
            if spec.requires_acceleration and not self.accelerated(runtime):
                continue
            nodes.append(runtime)
        return nodes

    def deploy(self, container, node=None):
        """Start ``container`` on ``node`` or on the best candidate."""
        spec = container.spec
        if node is None:
            candidates = self.candidates_for(spec)
            if not candidates:
                raise PlacementError(
                    "no node satisfies %r (requires_acceleration=%s)"
                    % (spec.name, spec.requires_acceleration)
                )
            node = min(candidates, key=self.load)
        elif spec.requires_acceleration and not self.accelerated(node):
            raise PlacementError(
                "%s lacks acceleration required by %r" % (node.host.name, spec.name)
            )
        container.start(node)
        self.containers[container.container_id] = container
        self._placements[node.host.name].append(container)
        return node

    def migrate(self, container, to_node):
        """Relocate a running container; returns the relocation downtime (ns).

        Stop-and-copy: the container detaches from its current runtime and
        reattaches at ``to_node``; INSANE re-binds its stream to whatever
        that node offers (the paper's seamless-migration story, §1/§8).
        """
        if container.state is not ContainerState.RUNNING:
            raise RuntimeError("can only migrate a running container")
        if container.spec.requires_acceleration and not self.accelerated(to_node):
            raise PlacementError(
                "%s lacks acceleration required by %r"
                % (to_node.host.name, container.spec.name)
            )
        sim = to_node.sim
        started = sim.now
        old_node = container.node
        self._placements[old_node.host.name].remove(container)
        container.stop()
        container.start(to_node)
        self._placements[to_node.host.name].append(container)
        return sim.now - started

    def stop(self, container):
        """Stop a managed container and free its placement slot."""
        if container.node is not None:
            self._placements[container.node.host.name].remove(container)
        container.stop()
        self.containers.pop(container.container_id, None)

    def stats(self):
        """Per-node placement summary."""
        return {
            name: [c.container_id for c in containers]
            for name, containers in self._placements.items()
        }
