"""Containers: isolated applications attaching to a co-located runtime."""

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core import QosPolicy, Session


class ContainerState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    STOPPED = "stopped"


@dataclass(frozen=True)
class ContainerSpec:
    """What the image needs from the platform.

    ``entrypoint`` receives ``(container, session, stream)`` and returns a
    generator — the container's main process.  ``requires_acceleration``
    constrains placement; ``slot_quota`` caps the shared-memory slots the
    container may hold (tenant isolation).
    """

    name: str
    entrypoint: Callable
    policy: QosPolicy = field(default_factory=QosPolicy.fast)
    stream_name: str = "default"
    requires_acceleration: bool = False
    slot_quota: Optional[int] = None


class Container:
    """One running (or runnable) instance of a spec."""

    _instances = 0

    def __init__(self, spec):
        Container._instances += 1
        self.spec = spec
        self.container_id = "%s-%d" % (spec.name, Container._instances)
        self.state = ContainerState.PENDING
        self.node = None
        self.session = None
        self.stream = None
        self.process = None
        self.incarnations = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self, runtime):
        """Attach to ``runtime`` and launch the entrypoint process."""
        if self.state is ContainerState.RUNNING:
            raise RuntimeError("%s is already running" % self.container_id)
        self.incarnations += 1
        self.session = Session(
            runtime,
            "%s#%d" % (self.container_id, self.incarnations),
            slot_quota=self.spec.slot_quota,
        )
        self.stream = self.session.create_stream(
            self.spec.policy, name=self.spec.stream_name
        )
        body = self.spec.entrypoint(self, self.session, self.stream)
        if body is not None:
            self.process = runtime.sim.process(body, name=self.container_id)
        self.node = runtime
        self.state = ContainerState.RUNNING
        return self

    def stop(self):
        """Detach from the runtime, reclaiming every held slot."""
        if self.state is not ContainerState.RUNNING:
            return 0
        if self.process is not None and not self.process.finished:
            self.process.interrupt(ContainerStopped(self.container_id))
        leaked = self.session.close()
        self.session = None
        self.stream = None
        self.process = None
        self.node = None
        self.state = ContainerState.STOPPED
        return leaked

    @property
    def datapath(self):
        """The technology INSANE bound this incarnation's stream to."""
        return self.stream.datapath if self.stream is not None else None

    def __repr__(self):
        where = self.node.host.name if self.node is not None else "-"
        return "Container(%s, %s on %s)" % (self.container_id, self.state.value, where)


class ContainerStopped(Exception):
    """Delivered into a container's main process when it is stopped."""
