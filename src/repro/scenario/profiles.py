"""Recorded impairment profiles: replayable fault traces as artifacts.

The "Note of Caution" line of work (PAPERS.md) argues that edge-testbed
fidelity claims are only worth something when the impairment conditions
are *replayable artifacts*, not prose.  A profile here is exactly that: a
named, checked-in list of JSON-native fault records (the
:meth:`repro.faults.FaultSchedule.from_dict` shape) that any scenario can
splice into its ``faults`` section with ``- profile: <name>`` — the
schema layer expands it to concrete records at validation time, so the
normalized spec (and therefore the sweep-cell digest) always pins the
exact impairment sequence that ran.

Times are offsets from simulation start; every profile fits comfortably
inside the few-millisecond horizon of the corpus workloads.
"""

#: name -> {"description", "faults": [fault records]}.
IMPAIRMENT_PROFILES = {
    # A flaky last-hop radio link: two short loss bursts, then a hard
    # outage and recovery — the classic edge WiFi trace shape.
    "wifi_flaky": {
        "description": "two loss bursts then a short hard outage",
        "faults": [
            {"kind": "loss_burst", "at": "150us", "for": "120us",
             "rate": 0.25, "link": 0},
            {"kind": "loss_burst", "at": "450us", "for": "80us",
             "rate": 0.4, "link": 0},
            {"kind": "link_down", "at": "700us", "for": "60us", "link": 0},
        ],
    },
    # A congested uplink: the NIC's receive descriptors are squeezed
    # while a noisy neighbour steals cycles on the receiving host.
    "congested_uplink": {
        "description": "receive-queue squeeze plus a noisy-neighbour CPU",
        "faults": [
            {"kind": "nic_queue_squeeze", "at": "100us", "for": "500us",
             "capacity": 4, "host": 1},
            {"kind": "cpu_slowdown", "at": "200us", "for": "400us",
             "factor": 2.0, "host": 1},
        ],
    },
    # Planned maintenance on the accelerated plane: the DPDK binding is
    # taken down and restored; QoS-aware failover carries the traffic.
    "edge_maintenance": {
        "description": "accelerated datapath down/up (failover window)",
        "faults": [
            {"kind": "datapath_failure", "at": "400us", "for": "1ms",
             "host": 0, "datapath": "dpdk", "reason": "maintenance"},
        ],
    },
    # A wedged poll loop: the datapath stalls without failing, queues
    # back up and drain — latency spike, no failover.
    "pmd_hiccup": {
        "description": "a stalled polling thread (latency spike, no loss)",
        "faults": [
            {"kind": "datapath_stall", "at": "300us", "for": "150us",
             "host": 0, "datapath": "dpdk"},
        ],
    },
}
