"""Scenario execution: corpus discovery, sweep cells, suite reports.

A scenario run is one sweep cell (``kind="scenario.run"``, params =
the normalized spec), so a corpus of scenarios rides the deterministic
parallel executor for free: sharding across workers, content-addressed
result caching, and the bit-identical ``merged_digest`` at any worker
count all apply unchanged.  :func:`run_suite` is the one entrypoint the
CLI and CI go through.
"""

import os
from hashlib import sha256

from repro.core.errors import ScenarioError
from repro.report import RunReport, canonical_json

#: file suffixes recognized as scenario documents.
SCENARIO_SUFFIXES = (".yaml", ".yml", ".json")

SCENARIO_CELL_KIND = "scenario.run"


def builtin_corpus_dir():
    """The checked-in scenario corpus shipped inside the package."""
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "corpus")


def discover_scenarios(path):
    """Scenario files under ``path`` (a file or a directory), sorted.

    The literal argument ``corpus`` (or ``corpus/``) falls back to the
    built-in corpus when no such file exists in the working directory, so
    ``insane scenario run corpus/`` works from anywhere."""
    if isinstance(path, (list, tuple)):
        found = []
        for entry in path:
            found.extend(discover_scenarios(entry))
        return found
    if not os.path.exists(path) and os.path.normpath(path) == "corpus":
        path = builtin_corpus_dir()
    if os.path.isfile(path):
        return [path]
    if not os.path.isdir(path):
        raise ScenarioError("no scenario file or directory at %r" % (path,))
    found = sorted(
        os.path.join(path, name)
        for name in os.listdir(path)
        if name.endswith(SCENARIO_SUFFIXES)
    )
    if not found:
        raise ScenarioError(
            "no scenario files (%s) under %r"
            % ("/".join(SCENARIO_SUFFIXES), path)
        )
    return found


def load_suite(path):
    """Load + validate every scenario under ``path``; rejects name clashes."""
    from repro.scenario.schema import load_scenario

    specs = []
    seen = {}
    for filename in discover_scenarios(path):
        spec = load_scenario(filename)
        name = spec["scenario"]
        if name in seen:
            raise ScenarioError(
                "duplicate scenario name %r (also defined in %s)"
                % (name, seen[name]), source=filename,
            )
        seen[name] = filename
        specs.append(spec)
    return specs


def spec_digest(spec):
    """sha256 over the canonical normalized spec."""
    return sha256(canonical_json(spec).encode()).hexdigest()


def metrics_digest(metrics):
    """sha256 over the canonical metrics dict (the determinism witness)."""
    return sha256(canonical_json(metrics).encode()).hexdigest()


def run_scenario_cell(spec, seed=0):
    """Execute one scenario cell; returns the JSON-native payload.

    ``spec`` is re-validated inside the worker (cheap, and it guarantees
    a hand-built cell can never smuggle an unnormalized spec past the
    schema).  The ``seed`` param is carried in the cell for key identity;
    the authoritative seed lives inside the spec itself.
    """
    from repro.scenario.compile import run_scenario
    from repro.scenario.schema import validate_scenario
    from repro.scenario.slo import evaluate_slos

    spec = validate_scenario(spec)
    metrics = run_scenario(spec)
    assertions, ok = evaluate_slos(spec["slo"], metrics)
    return {
        "scenario": spec["scenario"],
        "seed": spec["seed"],
        "spec_digest": spec_digest(spec),
        "metrics": metrics,
        "metrics_digest": metrics_digest(metrics),
        "slo": {"assertions": assertions, "ok": ok},
        "ok": ok,
    }


def scenario_cells(specs):
    """The specs as sweep cells (one cell per scenario)."""
    from repro.parallel.cells import make_cell

    return [
        make_cell(SCENARIO_CELL_KIND, spec=spec, seed=spec["seed"])
        for spec in specs
    ]


def run_suite(path, workers=1, cache=None, seed=None):
    """Run every scenario under ``path`` through the sweep executor.

    ``seed``, when given, overrides every scenario's own seed (the CLI's
    ``--seed`` escape hatch for perturbation studies); the override is
    part of each cell's identity, so it caches separately.

    Returns ``(report, sweep)``: the :class:`~repro.report.RunReport`
    (kind ``scenario.suite``) and the raw
    :class:`~repro.parallel.SweepResult` it was built from.
    """
    from repro.parallel import SweepExecutor

    specs = load_suite(path)
    if seed is not None:
        specs = [dict(spec, seed=seed) for spec in specs]
    sweep = SweepExecutor(workers=workers, cache=cache).run(
        scenario_cells(specs))
    return scenario_report(sweep), sweep


def scenario_report(sweep):
    """Fold one scenario sweep into a ``scenario.suite`` RunReport.

    ``data`` (digest-compared) carries the name-ordered per-scenario
    payloads, the executor's merged digest, and the pass/fail roll-up;
    execution provenance goes in non-compared ``meta``.
    """
    payloads = sorted(sweep.payloads(), key=lambda p: p["scenario"])
    failed = [p["scenario"] for p in payloads if not p["ok"]]
    return RunReport(
        kind="scenario.suite",
        data={
            "scenarios": payloads,
            "merged_digest": sweep.merged_digest(),
            "total": len(payloads),
            "passed": len(payloads) - len(failed),
            "failed": failed,
            "ok": not failed,
        },
        meta={
            "workers": sweep.workers,
            "executed": sweep.executed,
            "cache_hits": sweep.cache_hits,
        },
    )
