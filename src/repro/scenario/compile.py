"""Compile a normalized scenario spec onto the simulated INSANE stack.

:func:`compile_scenario` turns one validated spec (the output of
:func:`repro.scenario.schema.validate_scenario`) into a
:class:`CompiledScenario`: the testbed built from the topology section
(with the RDMA NIC switched on when the workload pins ``rdma``), the
runtime deployment with per-packet tracing enabled, and the fault
schedule assembled from steady-state impairments plus the scheduled
faults.  :meth:`CompiledScenario.run` drives the workload and returns a
JSON-native metrics dict — the input :func:`repro.scenario.slo.
evaluate_slos` asserts over.

A compiled scenario is single-use (fault schedules arm exactly once);
compile a fresh one per run.  Everything here is a pure function of the
spec, so the same spec + same seed yields a bit-identical metrics dict —
the property :func:`repro.scenario.runner.run_scenario_cell` digests.
"""

from repro.core import QosPolicy, Session
from repro.core.config import RuntimeConfig
from repro.core.errors import ScenarioError
from repro.core.runtime import InsaneDeployment
from repro.faults import FaultSchedule
from repro.hw import Testbed
from repro.hw.profiles import PROFILES
from repro.obs import LogHistogram
from repro.simnet import Timeout

#: stream/channel names shared by every driver — part of the spec's
#: compiled identity, fixed so digests never depend on driver internals.
STREAM_NAME = "scenario"
DATA_CHANNEL = 1


def _schedule_records(spec):
    """Fault records to arm: steady impairments first, then the schedule.

    A steady-state impairment is exactly a permanent loss burst starting
    at t=0 on the named link — the same injector vocabulary, so the whole
    impairment state is visible in one place (the fault trace)."""
    records = []
    for impairment in spec["topology"]["impairments"]:
        records.append({
            "kind": "loss_burst", "at": 0.0,
            "link": impairment["link"], "rate": impairment["loss_rate"],
        })
    records.extend(spec["faults"])
    return records


def build_schedule(spec):
    """The spec's full :class:`~repro.faults.FaultSchedule` (fresh, unarmed)."""
    return FaultSchedule.from_dict(_schedule_records(spec))


class CompiledScenario:
    """One scenario wired onto a live (simulated) stack, ready to run."""

    def __init__(self, spec):
        self.spec = spec
        self.workload = spec["workload"]
        self.kind = self.workload["kind"]
        self._ran = False
        if self.kind in ("baseline", "closed_loop", "city"):
            # baseline comparisons build one stack per system, closed-loop
            # runs one isolated stack per swept client count, and a city
            # builds its own (possibly partitioned) simulators — all
            # inside run(), so nothing to pre-build here
            self.testbed = None
            self.deployment = None
            self.schedule = None
            return
        profile = PROFILES[spec["topology"]["profile"]]
        pin = self.workload.get("datapath")
        if pin == "rdma" and not profile.rdma_nic:
            # the recorded testbeds have no RNIC; an explicit rdma pin is
            # the what-if that enables one (paper §6: "not yet available")
            profile = profile.replace(rdma_nic=True)
        self.testbed = Testbed(profile, hosts=spec["topology"]["hosts"],
                               seed=spec["seed"])
        config = RuntimeConfig(trace=True)
        if pin is not None:
            config.mapping_strategy = \
                lambda policy, available, _pin=pin: _pin
        self.deployment = InsaneDeployment(self.testbed, config=config)
        self.schedule = build_schedule(spec)

    def run(self):
        """Execute the workload; returns the JSON-native metrics dict."""
        if self._ran:
            raise ScenarioError(
                "a compiled scenario is single-use (its fault schedule "
                "arms exactly once); compile a fresh one",
                source=self.spec["scenario"],
            )
        self._ran = True
        if self.kind == "baseline":
            return _drive_baseline(self.spec)
        if self.kind == "closed_loop":
            from repro.loadgen.scenario import drive_closed_loop

            return drive_closed_loop(self.spec)
        if self.kind == "city":
            return _drive_city(self.spec)
        trace = None
        if len(self.schedule):
            trace = self.schedule.apply(self.testbed, self.deployment)
        metrics = _DRIVERS[self.kind](self.spec, self.testbed,
                                      self.deployment)
        metrics["faults"] = {
            "events": len(trace.events) if trace else 0,
            "digest": trace.digest() if trace else None,
        }
        return metrics


def compile_scenario(spec):
    """Build the simulated stack for one normalized spec."""
    return CompiledScenario(spec)


def run_scenario(spec):
    """Compile + run in one step; returns the metrics dict."""
    return compile_scenario(spec).run()


# -- shared metric blocks ------------------------------------------------------

def _latency_block(hist):
    return {
        "count": hist.count,
        "mean_ns": hist.mean,
        "p50_ns": hist.percentile(50),
        "p99_ns": hist.percentile(99),
        "p999_ns": hist.percentile(99.9),
        "max_ns": hist.maximum,
        "histogram": hist.to_dict(),
    }


def _gap_block(deliveries):
    """Median (nominal) and maximum (blackout) inter-delivery gap."""
    gaps = sorted(b - a for a, b in zip(deliveries, deliveries[1:]))
    if not gaps:
        return {"nominal_ns": 0.0, "blackout_ns": 0.0}
    return {"nominal_ns": gaps[len(gaps) // 2], "blackout_ns": gaps[-1]}


def _failovers(deployment):
    return sum(runtime.failovers.value
               for runtime in deployment.runtimes.values())


def _datapath_block(stream, initial):
    return {"initial": initial, "final": stream.datapath,
            "degraded": stream.degraded}


def _policy(workload):
    return QosPolicy.from_dict(workload["qos"])


# -- workload drivers ----------------------------------------------------------

def _drive_city(spec):
    """A generated city, optionally space-partitioned (:mod:`repro.dist`).

    The scenario's top-level seed governs generation; a workload datapath
    pin overrides the spec's.  ``topology.partitions > 1`` runs the
    conservative-sync engine (inline transport — a scenario cell may
    already be inside a sweep worker) and the digest it reports is, by
    the partitioning contract, the serial run's digest.
    """
    from repro.dist.sync import run_city_partitioned, run_city_serial
    from repro.hw.generate import CITY_EPOCH_NS, city_plan, resolve_topology

    topology = spec["topology"]
    city = dict(topology["spec"])
    city["seed"] = spec["seed"]
    pin = spec["workload"].get("datapath")
    if pin is not None:
        city["datapath"] = pin
    city = resolve_topology(city)
    partitions = topology["partitions"]
    if partitions <= 1:
        run = run_city_serial(city)
    else:
        run = run_city_partitioned(city, partitions, transport="inline")
    plan = city_plan(city)
    paced = LogHistogram()
    rpc = LogHistogram()
    for flow_id, k, delivered in run["records"]["deliveries"]:
        flow = plan["flows"][flow_id]
        base = CITY_EPOCH_NS + flow["phase_ns"] + k * city["interval_ns"]
        sample = delivered - base
        (paced if flow["kind"] == "paced" else rpc).record(sample)
    expected = len(plan["flows"]) * city["messages"]
    delivered_count = len(run["records"]["deliveries"])
    counters = run["records"]["counters"]
    return {
        "latency": _latency_block(paced),
        "rpc_rtt": _latency_block(rpc),
        "delivered": delivered_count,
        "expected": expected,
        "delivery_ratio": (delivered_count / expected) if expected else 0.0,
        "dropped": sum(value for key, value in counters.items()
                       if key.endswith("dropped")),
        "core_forwarded": run["records"]["core_forwarded"],
        "partition": {
            "partitions": run["partitions"],
            "transport": run["transport"],
            "digest": run["digest"],
            "events": run["events"],
        },
    }


def _drive_streaming(spec, testbed, deployment):
    """A paced one-way stream: the paper's sensor/telemetry category."""
    workload = spec["workload"]
    sim = testbed.sim
    messages = workload["messages"]
    size = workload["size"]
    interval = workload["interval"]
    policy = _policy(workload)
    pub = Session(deployment.runtime(0), "scn-pub")
    sub = Session(deployment.runtime(1), "scn-sub")
    pub_stream = pub.create_stream(policy, name=STREAM_NAME)
    sub_stream = sub.create_stream(policy, name=STREAM_NAME)
    source = pub.create_source(pub_stream, channel=DATA_CHANNEL)
    sink = sub.create_sink(sub_stream, channel=DATA_CHANNEL)
    initial = pub_stream.datapath
    hist = LogHistogram()
    deliveries = []

    def producer():
        for _ in range(messages):
            buffer = yield from pub.get_buffer_wait(source, size)
            yield from pub.emit_data(source, buffer, length=size)
            yield Timeout(interval)

    def consumer():
        while True:
            delivery = yield from sub.consume_data(sink)
            now = sim.now
            deliveries.append(now)
            stamps = delivery.meta.get("trace")
            if stamps and "emit_ns" in stamps:
                hist.record(now - stamps["emit_ns"])
            sub.release_buffer(sink, delivery)

    sim.process(consumer(), name="scn.sub")
    sim.process(producer(), name="scn.pub")
    sim.run()
    delivered = len(deliveries)
    duration = deliveries[-1] if deliveries else 0.0
    return {
        "kind": "streaming",
        "emitted": messages,
        "delivered": delivered,
        "delivery_ratio": delivered / messages,
        "duration_ns": duration,
        "goodput_gbps": delivered * size * 8.0 / duration if duration else 0.0,
        "latency": _latency_block(hist),
        "gaps": _gap_block(deliveries),
        "datapath": _datapath_block(pub_stream, initial),
        "failovers": _failovers(deployment),
    }


def _drive_pingpong(spec, testbed, deployment):
    """Symmetric request/response echo: the RTC-like category (RTT SLOs)."""
    workload = spec["workload"]
    sim = testbed.sim
    rounds = workload["rounds"]
    size = workload["size"]
    policy = _policy(workload)
    client = Session(deployment.runtime(0), "scn-client")
    server = Session(deployment.runtime(1), "scn-server")
    c_stream = client.create_stream(policy, name=STREAM_NAME)
    s_stream = server.create_stream(policy, name=STREAM_NAME)
    c_source = client.create_source(c_stream, channel=DATA_CHANNEL)
    c_sink = client.create_sink(c_stream, channel=DATA_CHANNEL + 1)
    s_sink = server.create_sink(s_stream, channel=DATA_CHANNEL)
    s_source = server.create_source(s_stream, channel=DATA_CHANNEL + 1)
    initial = c_stream.datapath
    hist = LogHistogram()

    def client_proc():
        for _ in range(rounds):
            start = sim.now
            buffer = yield from client.get_buffer_wait(c_source, size)
            yield from client.emit_data(c_source, buffer, length=size)
            delivery = yield from client.consume_data(c_sink)
            client.release_buffer(c_sink, delivery)
            hist.record(sim.now - start)

    def server_proc():
        while True:
            delivery = yield from server.consume_data(s_sink)
            server.release_buffer(s_sink, delivery)
            buffer = yield from server.get_buffer_wait(s_source, size)
            yield from server.emit_data(s_source, buffer, length=size)

    sim.process(server_proc(), name="scn.server")
    sim.process(client_proc(), name="scn.client")
    sim.run()
    return {
        "kind": "pingpong",
        "emitted": rounds,
        "delivered": hist.count,
        "duration_ns": sim.now,
        "latency": _latency_block(hist),
        "datapath": _datapath_block(c_stream, initial),
        "failovers": _failovers(deployment),
    }


def _drive_bulk(spec, testbed, deployment):
    """Reliable windowed transfer over the ARQ app layer (bulk category)."""
    from repro.apps.reliable import ReliableReceiver, ReliableSender
    from repro.core.errors import TransferError

    workload = spec["workload"]
    sim = testbed.sim
    messages = workload["messages"]
    size = workload["size"]
    interval = workload["interval"]
    policy = _policy(workload)
    tx = Session(deployment.runtime(0), "scn-tx")
    rx = Session(deployment.runtime(1), "scn-rx")
    tx_stream = tx.create_stream(policy, name=STREAM_NAME)
    rx_stream = rx.create_stream(policy, name=STREAM_NAME)
    sender = ReliableSender(tx, tx_stream, channel=DATA_CHANNEL,
                            window=workload["window"])
    initial = tx_stream.datapath
    delivered = []
    ReliableReceiver(rx, rx_stream, channel=DATA_CHANNEL,
                     deliver=delivered.append)
    expected = [_bulk_payload(index, size) for index in range(messages)]
    state = {"completed": False}

    def producer():
        try:
            for index in range(messages):
                yield from sender.send(expected[index])
                yield Timeout(interval)
            yield from sender.drain()
        except TransferError:
            return
        finally:
            sender.close()
        state["completed"] = True

    sim.process(producer(), name="scn.tx")
    sim.run()
    duration = sim.now
    return {
        "kind": "bulk",
        "emitted": messages,
        "delivered": len(delivered),
        "delivery_ratio": len(delivered) / messages,
        "duration_ns": duration,
        "goodput_gbps": (len(delivered) * size * 8.0 / duration
                         if duration else 0.0),
        "in_order": delivered == expected[: len(delivered)],
        "completed": state["completed"] and len(delivered) == messages,
        "retransmissions": sender.retransmissions.value,
        "datapath": _datapath_block(tx_stream, initial),
    }


def _bulk_payload(index, size):
    base = ("m%06d|" % index).encode()
    if size <= len(base):
        return base[:size]
    return base + b"." * (size - len(base))


def _drive_fanout(spec, testbed, deployment):
    """One publisher fanned out to N sink applications (MoM category).

    With ``subscribers`` in the workload the fan-out runs at hybrid
    fidelity on the fluid engine (a hot fraction packet-accurate, the
    cold tail a rate-envelope aggregate — DESIGN.md §15), reusing this
    compiler's pre-built stack; with ``sinks`` every sink is a real
    packet-accurate session.
    """
    workload = spec["workload"]
    if "subscribers" in workload:
        from repro.fluid.fanout import drive_fanout_scenario

        return drive_fanout_scenario(spec, testbed, deployment,
                                     stream_name=STREAM_NAME,
                                     channel=DATA_CHANNEL)
    sim = testbed.sim
    messages = workload["messages"]
    size = workload["size"]
    sinks = workload["sinks"]
    if messages < 1:
        raise ScenarioError(
            "a fanout workload needs messages >= 1 (the delivery ratio "
            "divides by messages x sinks)",
            path="workload.messages", source=spec["scenario"],
        )
    if sinks < 1:
        raise ScenarioError(
            "a fanout workload needs sinks >= 1 (the delivery ratio "
            "divides by messages x sinks)",
            path="workload.sinks", source=spec["scenario"],
        )
    policy = _policy(workload)
    pub = Session(deployment.runtime(0), "scn-pub")
    pub_stream = pub.create_stream(policy, name=STREAM_NAME)
    source = pub.create_source(pub_stream, channel=DATA_CHANNEL)
    initial = pub_stream.datapath
    hist = LogHistogram()
    per_sink = [[] for _ in range(sinks)]

    def producer():
        for _ in range(messages):
            buffer = yield from pub.get_buffer_wait(source, size)
            yield from pub.emit_data(source, buffer, length=size)

    def sink_proc(session, sink, deliveries):
        while True:
            delivery = yield from session.consume_data(sink)
            now = sim.now
            deliveries.append(now)
            stamps = delivery.meta.get("trace")
            if stamps and "emit_ns" in stamps:
                hist.record(now - stamps["emit_ns"])
            session.release_buffer(sink, delivery)

    for index in range(sinks):
        session = Session(deployment.runtime(1), "scn-sink%d" % index)
        stream = session.create_stream(policy, name=STREAM_NAME)
        sink = session.create_sink(stream, channel=DATA_CHANNEL)
        sim.process(sink_proc(session, sink, per_sink[index]),
                    name="scn.sink%d" % index)
    sim.process(producer(), name="scn.pub")
    sim.run()
    total = sum(len(deliveries) for deliveries in per_sink)
    # goodput is measured over the first→last delivery window, not from
    # t=0: the old form divided by the absolute end time, so any idle
    # prefix (a fault delaying the first delivery, a slow datapath bind)
    # silently deflated every rate in the report
    firsts = [deliveries[0] for deliveries in per_sink if deliveries]
    lasts = [deliveries[-1] for deliveries in per_sink if deliveries]
    duration = (max(lasts) - min(firsts)) if firsts else 0.0
    sink_rates = [
        (len(deliveries) - 1) * size * 8.0
        / (deliveries[-1] - deliveries[0])
        if len(deliveries) > 1 and deliveries[-1] > deliveries[0] else 0.0
        for deliveries in per_sink
    ]
    return {
        "kind": "fanout",
        "sinks": sinks,
        "emitted": messages,
        "delivered": total,
        "delivery_ratio": total / (messages * sinks),
        "duration_ns": duration,
        "goodput_gbps": total * size * 8.0 / duration if duration > 0
        else 0.0,
        "min_sink_goodput_gbps": min(sink_rates),
        "latency": _latency_block(hist),
        "gaps": _gap_block(per_sink[0]),
        "datapath": _datapath_block(pub_stream, initial),
        "failovers": _failovers(deployment),
    }


def _drive_baseline(spec):
    """Side-by-side RTT of one system vs one baseline (Fig. 7 style).

    Both sides run on fresh same-seed testbeds with the same fault
    records (a fresh schedule each — schedules arm once)."""
    from repro.bench.harness import make_system

    workload = spec["workload"]
    means = {}
    for field in ("system", "baseline"):
        name = workload[field]
        testbed = Testbed(PROFILES[spec["topology"]["profile"]],
                          hosts=spec["topology"]["hosts"],
                          seed=spec["seed"])
        app = make_system(name, testbed)
        records = _schedule_records(spec)
        if records:
            FaultSchedule.from_dict(records).apply(
                testbed, getattr(app, "deployment", None))
        rtts = app.pingpong(workload["rounds"], workload["size"])
        means[field] = rtts.mean
    system_ns, baseline_ns = means["system"], means["baseline"]
    return {
        "kind": "baseline",
        "system": workload["system"],
        "baseline": workload["baseline"],
        "rounds": workload["rounds"],
        "size": workload["size"],
        "system_rtt_ns": system_ns,
        "baseline_rtt_ns": baseline_ns,
        "speedup_mean": baseline_ns / system_ns if system_ns else 0.0,
        "slowdown_mean": system_ns / baseline_ns if baseline_ns else 0.0,
        "faults": {"events": len(_schedule_records(spec)), "digest": None},
    }


_DRIVERS = {
    "streaming": _drive_streaming,
    "pingpong": _drive_pingpong,
    "bulk": _drive_bulk,
    "fanout": _drive_fanout,
}
