"""The declarative scenario DSL and its SLO verification engine.

ROADMAP item 4 ("as many scenarios as you can imagine") made concrete:
a scenario is a small YAML/JSON document — workload mix per service
category, topology, per-path impairments, replayed fault profiles, and
SLO assertions — compiled onto the existing stack (core runtime, hw
testbeds, ``repro.faults`` schedules, ``repro.obs`` histograms) and
evaluated into a structured pass/fail :class:`~repro.report.RunReport`.

Pipeline::

    schema.load_scenario(path)      # parse + validate, errors cite paths
      -> compile.run_scenario(spec) # testbed/faults/workload -> metrics
      -> slo.evaluate_slos(...)     # assertions -> pass/fail
      -> runner.run_suite(...)      # corpus through the SweepExecutor

Every scenario pins its seed, so a suite's merged digest is bit-identical
at any worker count — the corpus doubles as a regression gate.
"""

from repro.scenario.compile import compile_scenario, run_scenario
from repro.scenario.runner import (
    builtin_corpus_dir,
    discover_scenarios,
    run_scenario_cell,
    run_suite,
    scenario_report,
)
from repro.scenario.schema import (
    SCENARIO_SCHEMA,
    ScenarioError,
    load_scenario,
    parse_scenario,
    validate_scenario,
)
from repro.scenario.slo import SLO_NAMES, evaluate_slos

__all__ = [
    "SCENARIO_SCHEMA",
    "SLO_NAMES",
    "ScenarioError",
    "builtin_corpus_dir",
    "compile_scenario",
    "discover_scenarios",
    "evaluate_slos",
    "load_scenario",
    "parse_scenario",
    "run_scenario",
    "run_scenario_cell",
    "run_suite",
    "scenario_report",
    "validate_scenario",
]
