"""SLO assertions: validation, evaluation, and the pass/fail verdict.

An SLO section maps assertion names to thresholds::

    slo:
      p99_latency_max: 80us       # ceiling, duration
      goodput_min: 1.5            # floor, Gbps
      delivery_ratio_min: 0.95    # floor, fraction
      blackout_max: 400us         # ceiling, duration
      in_order: true              # boolean

Naming convention: ``*_max`` is a ceiling (observed <= threshold passes),
``*_min`` a floor (observed >= threshold passes); a value **exactly at**
its threshold always passes — thresholds are inclusive bounds, not open
intervals.  Evaluation never passes silently on missing data: a latency
assertion over an empty histogram is a *failed* assertion with an
explicit "no samples" reason, and an assertion whose metric the workload
did not produce is rejected already at validation time (it would be
unfalsifiable).
"""

from repro.core.errors import ScenarioError

#: assertion name -> (direction, value kind, metric path, workload kinds).
#: direction: "max" ceiling / "min" floor / "bool" equality.
#: value kind: "duration" (ns), "gbps", "rps", "ratio", "count",
#: "factor", "bool".
_LATENCY_KINDS = ("streaming", "pingpong", "fanout", "city")
_DELIVERY_KINDS = ("streaming", "fanout", "bulk", "city")

SLO_CATALOG = {
    "mean_latency_max": ("max", "duration", ("latency", "mean_ns"), _LATENCY_KINDS),
    "p50_latency_max": ("max", "duration", ("latency", "p50_ns"), _LATENCY_KINDS),
    "p99_latency_max": ("max", "duration", ("latency", "p99_ns"), _LATENCY_KINDS),
    "p999_latency_max": ("max", "duration", ("latency", "p999_ns"), _LATENCY_KINDS),
    "max_latency_max": ("max", "duration", ("latency", "max_ns"), _LATENCY_KINDS),
    "goodput_min": ("min", "gbps", ("goodput_gbps",),
                    ("streaming", "fanout", "bulk")),
    "sink_goodput_min": ("min", "gbps", ("min_sink_goodput_gbps",),
                         ("fanout",)),
    "delivery_ratio_min": ("min", "ratio", ("delivery_ratio",),
                           _DELIVERY_KINDS),
    "delivered_min": ("min", "count", ("delivered",), _DELIVERY_KINDS),
    "blackout_max": ("max", "duration", ("gaps", "blackout_ns"),
                     ("streaming", "fanout")),
    "retransmissions_max": ("max", "count", ("retransmissions",), ("bulk",)),
    "in_order": ("bool", "bool", ("in_order",), ("bulk",)),
    "completed": ("bool", "bool", ("completed",), ("bulk",)),
    "failovers_min": ("min", "count", ("failovers",),
                      ("streaming", "pingpong", "fanout")),
    "baseline_speedup_min": ("min", "factor", ("speedup_mean",),
                             ("baseline",)),
    "baseline_slowdown_max": ("max", "factor", ("slowdown_mean",),
                              ("baseline",)),
    "stable_p99_latency_max": ("max", "duration",
                               ("stable", "latency", "p99_ns"),
                               ("closed_loop",)),
    "stable_throughput_min": ("min", "rps", ("stable", "throughput_rps"),
                              ("closed_loop",)),
    "law_residual_max": ("max", "ratio", ("law", "max_residual"),
                         ("closed_loop",)),
    "knee_clients_min": ("min", "count", ("capacity", "knee_clients"),
                         ("closed_loop",)),
    "promotions_min": ("min", "count", ("fluid", "promotions"),
                       ("fanout",)),
}

SLO_NAMES = tuple(sorted(SLO_CATALOG))

#: ceilings that must be mutually ordered: a tighter bound on a higher
#: percentile than on a lower one can never hold and is a spec conflict.
_PERCENTILE_CHAIN = ("p50_latency_max", "p99_latency_max",
                     "p999_latency_max", "max_latency_max")


def _normalize_threshold(name, value, kind, path, source):
    from repro.scenario.schema import parse_duration

    if kind == "duration":
        return parse_duration(value, path, source)
    if kind == "bool":
        if not isinstance(value, bool):
            raise ScenarioError("%s must be true or false, got %r"
                                % (name, value), path=path, source=source)
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError("%s must be a number, got %r" % (name, value),
                            path=path, source=source)
    value = float(value) if kind != "count" else value
    if kind == "count":
        if not isinstance(value, int) or value < 0:
            raise ScenarioError("%s must be a non-negative integer, got %r"
                                % (name, value), path=path, source=source)
        return value
    if kind == "ratio" and not 0.0 <= value <= 1.0:
        raise ScenarioError(
            "%s is a fraction and must be in [0, 1], got %r" % (name, value),
            path=path, source=source,
        )
    if kind in ("gbps", "factor", "rps") and value <= 0:
        raise ScenarioError("%s must be > 0, got %r" % (name, value),
                            path=path, source=source)
    return value


def validate_slo_section(section, spec, source):
    """Normalize an ``slo`` mapping; raises on unknown/contradictory SLOs.

    Conflict checks (beyond per-value ranges):

    * percentile ceilings must be monotone — ``p99_latency_max`` tighter
      than ``p50_latency_max`` can never pass;
    * ``delivered_min`` cannot exceed the messages the workload emits;
    * ``failovers_min`` needs a ``datapath_failure`` fault to provoke one.
    """
    workload = spec["workload"]
    normalized = {}
    for name in sorted(section):
        path = "slo.%s" % name
        entry = SLO_CATALOG.get(name)
        if entry is None:
            raise ScenarioError(
                "unknown SLO %r (known assertions: %s)"
                % (name, ", ".join(SLO_NAMES)), path=path, source=source,
            )
        _direction, kind, _metric, kinds = entry
        if workload["kind"] not in kinds:
            raise ScenarioError(
                "%s does not apply to a %r workload (valid for: %s) — it "
                "would be unfalsifiable" % (name, workload["kind"],
                                            ", ".join(kinds)),
                path=path, source=source,
            )
        normalized[name] = _normalize_threshold(name, section[name], kind,
                                                path, source)

    chain = [(name, normalized[name]) for name in _PERCENTILE_CHAIN
             if name in normalized]
    for (lo_name, lo_value), (hi_name, hi_value) in zip(chain, chain[1:]):
        if lo_value > hi_value:
            raise ScenarioError(
                "conflicting SLOs: %s (%.0f ns) is looser than %s (%.0f ns) "
                "— a higher percentile can never beat a lower one"
                % (lo_name, lo_value, hi_name, hi_value),
                path="slo.%s" % hi_name, source=source,
            )
    if "delivered_min" in normalized:
        emitted = workload.get("messages")
        if emitted is not None and normalized["delivered_min"] > emitted:
            raise ScenarioError(
                "conflicting SLOs: delivered_min=%d but the workload only "
                "emits %d message(s)" % (normalized["delivered_min"], emitted),
                path="slo.delivered_min", source=source,
            )
    if "knee_clients_min" in normalized:
        clients = workload.get("clients")
        if not isinstance(clients, list):
            raise ScenarioError(
                "knee_clients_min needs a clients *sweep* to locate a knee "
                "in; this workload runs a single client count — make "
                "clients a list", path="slo.knee_clients_min", source=source,
            )
        if normalized["knee_clients_min"] > max(clients):
            raise ScenarioError(
                "conflicting SLOs: knee_clients_min=%d but the sweep only "
                "reaches %d clients — the knee can never be above the "
                "largest swept count" % (normalized["knee_clients_min"],
                                         max(clients)),
                path="slo.knee_clients_min", source=source,
            )
    if "promotions_min" in normalized:
        fidelity = workload.get("fidelity") or {}
        if "subscribers" not in workload:
            raise ScenarioError(
                "promotions_min needs a hybrid fan-out (a subscribers "
                "population with a fluid tier); this workload models every "
                "sink packet-accurately, so nothing can be promoted",
                path="slo.promotions_min", source=source,
            )
        if (normalized["promotions_min"] > 0
                and fidelity.get("promote_threshold") is None):
            raise ScenarioError(
                "conflicting SLOs: promotions_min > 0 but the workload sets "
                "no fidelity.promote_threshold — the fidelity controller is "
                "disabled and can never promote",
                path="slo.promotions_min", source=source,
            )
    if normalized.get("failovers_min", 0) > 0:
        if not any(fault["kind"] == "datapath_failure"
                   for fault in spec["faults"]):
            raise ScenarioError(
                "conflicting SLOs: failovers_min > 0 but no "
                "datapath_failure fault is scheduled to provoke one",
                path="slo.failovers_min", source=source,
            )
    return normalized


def _lookup(metrics, path):
    value = metrics
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def evaluate_slos(slo_spec, metrics):
    """Evaluate assertions against a metrics dict; returns (assertions, ok).

    ``assertions`` is a name-ordered list of JSON-native records::

        {"name": ..., "threshold": ..., "observed": ..., "ok": bool,
         "reason": ...}   # reason present only on failure

    A missing metric or an empty latency histogram fails the assertion
    loudly (explicit reason) — never silently.
    """
    assertions = []
    all_ok = True
    for name in sorted(slo_spec):
        direction, kind, metric_path, _kinds = SLO_CATALOG[name]
        threshold = slo_spec[name]
        observed = _lookup(metrics, metric_path)
        record = {"name": name, "threshold": threshold, "observed": observed}
        reason = None
        if metric_path[0] == "latency" \
                and not (metrics.get("latency") or {}).get("count"):
            observed = None
            record["observed"] = None
            reason = ("no latency samples recorded (empty histogram) — "
                      "refusing to pass an SLO over no data")
        elif observed is None:
            reason = ("metric %s missing from the run's results"
                      % ".".join(metric_path))
        if reason is None:
            if direction == "max":
                ok = observed <= threshold
                if not ok:
                    reason = "observed %s exceeds the %s ceiling" % (
                        _fmt(observed, kind), _fmt(threshold, kind))
            elif direction == "min":
                ok = observed >= threshold
                if not ok:
                    reason = "observed %s is under the %s floor" % (
                        _fmt(observed, kind), _fmt(threshold, kind))
            else:
                ok = observed == threshold
                if not ok:
                    reason = "observed %r != required %r" % (observed,
                                                             threshold)
        else:
            ok = False
        record["ok"] = ok
        if reason is not None:
            record["reason"] = reason
        assertions.append(record)
        all_ok = all_ok and ok
    return assertions, all_ok


def _fmt(value, kind):
    if kind == "duration":
        return "%.1f us" % (value / 1000.0)
    if kind == "gbps":
        return "%.3f Gbps" % value
    if kind == "ratio":
        return "%.4f" % value
    if kind == "factor":
        return "%.2fx" % value
    if kind == "rps":
        return "%.0f req/s" % value
    return str(value)


def format_assertions(assertions, indent="  "):
    """Human-readable one-line-per-assertion rendering."""
    lines = []
    for record in assertions:
        mark = "PASS" if record["ok"] else "FAIL"
        line = "%s%s %-24s threshold=%s observed=%s" % (
            indent, mark, record["name"], record["threshold"],
            record["observed"],
        )
        if not record["ok"]:
            line += "  (%s)" % record.get("reason", "failed")
        lines.append(line)
    return "\n".join(lines)
