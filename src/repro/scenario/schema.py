"""Scenario-document schema: parse, validate, normalize — loudly.

A scenario document (YAML or JSON) describes one verifiable experiment::

    scenario: streaming-dpdk-lossburst
    description: paced DPDK stream through a 20% loss burst
    seed: 7
    topology:
      profile: local          # local | cloud
      hosts: 2
      impairments:            # steady-state per-path impairments
        - {link: 0, loss_rate: 0.01}
    workload:
      kind: streaming         # streaming | pingpong | bulk | fanout | baseline
      messages: 400
      size: 1KB
      interval: 2us
      qos: {acceleration: fast}
      datapath: dpdk          # optional hard pin
    faults:
      - {kind: loss_burst, at: 100us, for: 200us, rate: 0.2}
      - {profile: wifi_flaky} # a recorded impairment profile, replayed
    slo:
      p99_latency_max: 80us
      delivery_ratio_min: 0.9

:func:`validate_scenario` normalizes every field to canonical JSON-native
values (durations to float ns, sizes to byte counts, QoS to enum values,
recorded profiles expanded to concrete fault records) so the normalized
spec is *the* cell payload the sweep executor shards and digests.  Every
validation failure raises :class:`~repro.core.errors.ScenarioError`
citing the precise document path (``faults[2].kind``) and, when known,
the source file.
"""

import json
import re

from repro.core.errors import FaultInjectionError, QosValidationError, ScenarioError
from repro.core.qos import QosPolicy
from repro.faults.injectors import parse_ns
from repro.faults.schedule import INJECTOR_KINDS, _injector_from_record

#: Version of the scenario-document layout; stored in every normalized
#: spec so compiled artifacts can be rejected loudly on layout changes.
SCENARIO_SCHEMA = 1

#: datapath names a workload may pin.
DATAPATHS = ("udp", "xdp", "dpdk", "rdma")

#: topology profiles (the paper's two testbeds).
TOPOLOGY_PROFILES = ("local", "cloud")

#: workload kinds, one per service category (paper §2 traffic classes),
#: plus the closed-loop interactive model of ``repro.loadgen`` and the
#: frame-level city workload of generated topologies (``repro.dist``).
WORKLOAD_KINDS = ("streaming", "pingpong", "bulk", "fanout", "baseline",
                  "closed_loop", "city")

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")

_SIZE_UNITS = (("kib", 1024), ("mib", 1024 ** 2), ("kb", 1024),
               ("mb", 1024 ** 2), ("b", 1))


def parse_size(value, path, source=None):
    """Normalize a payload size to an int byte count.

    Accepts plain ints and ``"64B"``/``"1KB"``/``"4KiB"``-style strings
    (K and Ki are both 1024 — the paper's payload axes are powers of
    two).
    """
    if isinstance(value, bool):
        raise ScenarioError("size must be bytes or a '1KB'-style string, "
                            "got %r" % (value,), path=path, source=source)
    if isinstance(value, int):
        size = value
    elif isinstance(value, str):
        text = value.strip().lower().replace("_", "").replace(" ", "")
        for suffix, scale in sorted(_SIZE_UNITS, key=lambda u: -len(u[0])):
            if text.endswith(suffix):
                try:
                    size = int(text[: -len(suffix)]) * scale
                except ValueError:
                    raise ScenarioError(
                        "bad size %r: the part before %r must be an integer"
                        % (value, suffix.upper()), path=path, source=source
                    ) from None
                break
        else:
            try:
                size = int(text)
            except ValueError:
                raise ScenarioError(
                    "bad size %r: use bytes or a suffix of B/KB/KiB/MB/MiB "
                    "(e.g. '1KB')" % (value,), path=path, source=source
                ) from None
    else:
        raise ScenarioError("size must be bytes or a '1KB'-style string, "
                            "got %s" % type(value).__name__,
                            path=path, source=source)
    if size <= 0:
        raise ScenarioError("size must be > 0 bytes, got %d" % size,
                            path=path, source=source)
    return size


def parse_duration(value, path, source=None, allow_none=False):
    """Normalize a duration to float ns, citing ``path`` on failure."""
    if value is None and allow_none:
        return None
    try:
        ns = parse_ns(value, "duration")
    except FaultInjectionError as exc:
        raise ScenarioError(str(exc), path=path, source=source) from None
    if ns is None or ns < 0:
        raise ScenarioError("duration must be >= 0, got %r" % (value,),
                            path=path, source=source)
    return ns


def _require(mapping, key, types, path, source, default=None, required=False):
    value = mapping.get(key, default)
    if value is None and not required:
        return default
    if value is None and required:
        raise ScenarioError("missing required field %r" % key,
                            path=path, source=source)
    if types is not None and not isinstance(value, types):
        if isinstance(types, tuple):
            expected = "/".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise ScenarioError(
            "%s must be %s, got %s %r"
            % (key, expected, type(value).__name__, value),
            path="%s.%s" % (path, key) if path else key, source=source,
        )
    return value


def _reject_unknown(mapping, known, path, source):
    unknown = sorted(set(mapping) - set(known))
    if unknown:
        where = "%s.%s" % (path, unknown[0]) if path else unknown[0]
        raise ScenarioError(
            "unknown field %r (known fields: %s)"
            % (unknown[0], ", ".join(sorted(known))), path=where,
            source=source,
        )


def _check_int(value, path, source, lo=1, what="value"):
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError("%s must be an integer, got %r" % (what, value),
                            path=path, source=source)
    if value < lo:
        raise ScenarioError("%s must be >= %d, got %d" % (what, lo, value),
                            path=path, source=source)
    return value


# -- section validators --------------------------------------------------------

def _validate_generated_topology(section, source):
    """A generator-backed topology: ``kind: generated`` plus a preset
    name or an inline city spec (see :mod:`repro.hw.generate`), and the
    partition count :mod:`repro.dist` executes it across."""
    _reject_unknown(section, ("kind", "preset", "spec", "partitions"),
                    "topology", source)
    kind = section.get("kind", "generated")
    if kind != "generated":
        raise ScenarioError(
            "unknown topology kind %r (only 'generated' topologies carry "
            "a kind; testbed topologies use profile/hosts)" % (kind,),
            path="topology.kind", source=source,
        )
    preset = section.get("preset")
    raw = section.get("spec")
    if (preset is None) == (raw is None):
        raise ScenarioError(
            "a generated topology names a preset OR gives an inline spec "
            "(exactly one of topology.preset / topology.spec)",
            path="topology", source=source,
        )
    if preset is not None and not isinstance(preset, str):
        raise ScenarioError("preset must be a preset name string, got %r"
                            % (preset,), path="topology.preset",
                            source=source)
    if raw is not None:
        if not isinstance(raw, dict):
            raise ScenarioError("spec must be a mapping of generator "
                                "parameters", path="topology.spec",
                                source=source)
        if "seed" in raw:
            raise ScenarioError(
                "the scenario's top-level seed governs generation — drop "
                "topology.spec.seed", path="topology.spec.seed",
                source=source,
            )
    partitions = _check_int(section.get("partitions", 1),
                            "topology.partitions", source, lo=1,
                            what="partitions")
    from repro.core.errors import TopologyError
    from repro.hw.generate import resolve_topology

    try:
        resolved = resolve_topology(preset if preset is not None else raw)
    except TopologyError as exc:
        raise ScenarioError(str(exc), path="topology", source=source) \
            from None
    if partitions > resolved["regions"]:
        raise ScenarioError(
            "cannot run %d region(s) across %d partitions — a partition "
            "owns at least one whole region"
            % (resolved["regions"], partitions),
            path="topology.partitions", source=source,
        )
    # the stored spec is seed-less: the scenario's top-level seed is
    # injected at compile time, and a seed-free spec re-validates
    # unchanged (the seed rejection above would otherwise trip on our
    # own normalized output inside run_scenario_cell).
    resolved = {key: value for key, value in resolved.items()
                if key != "seed"}
    return {"kind": "generated", "spec": resolved, "partitions": partitions}


def _validate_topology(section, source):
    if section is None:
        section = {}
    if not isinstance(section, dict):
        raise ScenarioError("topology must be a mapping, got %s"
                            % type(section).__name__,
                            path="topology", source=source)
    if "kind" in section or "preset" in section or "spec" in section:
        return _validate_generated_topology(section, source)
    _reject_unknown(section, ("profile", "hosts", "impairments"),
                    "topology", source)
    profile = section.get("profile", "local")
    if profile not in TOPOLOGY_PROFILES:
        raise ScenarioError(
            "unknown topology profile %r (choose from %s)"
            % (profile, ", ".join(TOPOLOGY_PROFILES)),
            path="topology.profile", source=source,
        )
    hosts = _check_int(section.get("hosts", 2), "topology.hosts", source,
                       lo=2, what="hosts")
    impairments = []
    raw = section.get("impairments", [])
    if not isinstance(raw, list):
        raise ScenarioError("impairments must be a list",
                            path="topology.impairments", source=source)
    for index, entry in enumerate(raw):
        path = "topology.impairments[%d]" % index
        if not isinstance(entry, dict):
            raise ScenarioError("an impairment must be a mapping",
                                path=path, source=source)
        _reject_unknown(entry, ("link", "loss_rate"), path, source)
        link = _check_int(entry.get("link", 0), path + ".link", source,
                          lo=0, what="link index")
        loss = entry.get("loss_rate")
        if not isinstance(loss, (int, float)) or isinstance(loss, bool) \
                or not 0.0 < float(loss) <= 1.0:
            raise ScenarioError(
                "loss_rate must be a number in (0, 1], got %r" % (loss,),
                path=path + ".loss_rate", source=source,
            )
        impairments.append({"link": link, "loss_rate": float(loss)})
    return {"profile": profile, "hosts": hosts, "impairments": impairments}


def _validate_qos(value, path, source):
    if value is None:
        value = {"acceleration": "fast"}
    if not isinstance(value, dict):
        raise ScenarioError("qos must be a mapping of policy options",
                            path=path, source=source)
    try:
        policy = QosPolicy.from_dict(value)
    except QosValidationError as exc:
        raise ScenarioError(str(exc), path=path, source=source) from None
    return policy.to_dict()


_FIDELITY_FIELDS = ("hot_fraction", "promote_threshold", "drain_interval")


def _validate_fidelity(value, path, source):
    """The hybrid fan-out's fidelity split (repro.fluid).

    ``hot_fraction`` of the subscribers stay packet-accurate;
    ``promote_threshold`` (messages/s) arms the promotion controller;
    ``drain_interval`` overrides the fluid aggregate's drain period.
    """
    if not isinstance(value, dict):
        raise ScenarioError("fidelity must be a mapping",
                            path=path, source=source)
    _reject_unknown(value, _FIDELITY_FIELDS, "workload.fidelity", source)
    out = {}
    if "hot_fraction" in value:
        fraction = value["hot_fraction"]
        if isinstance(fraction, bool) or \
                not isinstance(fraction, (int, float)) or \
                not 0.0 <= float(fraction) <= 1.0:
            raise ScenarioError(
                "hot_fraction (the packet-accurate share of the "
                "subscribers) must be a number in [0, 1], got %r"
                % (fraction,),
                path="%s.hot_fraction" % path, source=source,
            )
        out["hot_fraction"] = float(fraction)
    if "promote_threshold" in value:
        threshold = value["promote_threshold"]
        if isinstance(threshold, bool) or \
                not isinstance(threshold, (int, float)) or \
                float(threshold) <= 0.0:
            raise ScenarioError(
                "promote_threshold (messages/s above which cold "
                "subscribers promote to packet-accurate DES) must be a "
                "number > 0, got %r" % (threshold,),
                path="%s.promote_threshold" % path, source=source,
            )
        out["promote_threshold"] = float(threshold)
    if "drain_interval" in value:
        out["drain_interval"] = parse_duration(
            value["drain_interval"], "%s.drain_interval" % path, source)
        if out["drain_interval"] <= 0:
            raise ScenarioError(
                "drain_interval must be > 0 (it paces the fluid "
                "aggregate's single periodic event)",
                path="%s.drain_interval" % path, source=source,
            )
    return out


_WORKLOAD_FIELDS = {
    "streaming": ("kind", "messages", "size", "interval", "qos", "datapath"),
    "pingpong": ("kind", "rounds", "size", "qos", "datapath"),
    "bulk": ("kind", "messages", "size", "interval", "window", "qos"),
    "fanout": ("kind", "messages", "size", "sinks", "subscribers",
               "fidelity", "interval", "qos", "datapath"),
    "baseline": ("kind", "system", "baseline", "rounds", "size"),
    "closed_loop": ("kind", "clients", "think", "think_dist", "size",
                    "outstanding", "warmup", "window", "windows",
                    "cooldown", "epsilon", "qos", "datapath"),
    # generation parameters (messages, size, interval, classes) live in
    # the generated topology's spec; the workload only pins a datapath
    "city": ("kind", "datapath"),
}

#: systems a baseline workload may name (bench harness Fig. 7 set).
BASELINE_SYSTEMS = (
    "udp_blocking", "udp_nonblocking", "catnap", "insane_slow",
    "catnip", "insane_fast", "raw_dpdk",
)


def _validate_clients(value, source):
    """``clients``: one count (single point) or a strictly-increasing
    list of counts (an in-scenario capacity sweep)."""
    path = "workload.clients"
    if not isinstance(value, list):
        return _check_int(value, path, source, lo=1, what="clients")
    if len(value) < 2:
        raise ScenarioError(
            "a clients list is a capacity sweep and needs at least 2 "
            "counts (use a plain integer for a single point)",
            path=path, source=source,
        )
    counts = [
        _check_int(entry, "%s[%d]" % (path, index), source, lo=1,
                   what="clients")
        for index, entry in enumerate(value)
    ]
    if any(b <= a for a, b in zip(counts, counts[1:])):
        raise ScenarioError(
            "a clients sweep must be strictly increasing, got %r" % (value,),
            path=path, source=source,
        )
    return counts


def _validate_workload(section, source):
    if not isinstance(section, dict):
        raise ScenarioError("workload must be a mapping",
                            path="workload", source=source)
    kind = section.get("kind")
    if kind not in WORKLOAD_KINDS:
        raise ScenarioError(
            "unknown workload kind %r (choose from %s)"
            % (kind, ", ".join(WORKLOAD_KINDS)),
            path="workload.kind", source=source,
        )
    if kind == "closed_loop" and "messages" in section:
        # checked before the unknown-field sweep so the spec error is the
        # specific one: a closed-loop run is time-bounded, never
        # count-bounded — the two terminations contradict each other
        raise ScenarioError(
            "a closed_loop workload is bounded by its measurement windows, "
            "not a message count — drop 'messages' (clients cycle until "
            "warmup + windows + cooldown elapse)",
            path="workload.messages", source=source,
        )
    _reject_unknown(section, _WORKLOAD_FIELDS[kind], "workload", source)
    out = {"kind": kind}

    def size_field(default):
        out["size"] = parse_size(section.get("size", default),
                                 "workload.size", source)

    def count_field(name, default, lo=1):
        out[name] = _check_int(section.get(name, default),
                               "workload.%s" % name, source, lo=lo,
                               what=name)

    if kind == "streaming":
        count_field("messages", 400)
        size_field(1024)
        out["interval"] = parse_duration(section.get("interval", 2000.0),
                                         "workload.interval", source)
        out["qos"] = _validate_qos(section.get("qos"), "workload.qos", source)
    elif kind == "pingpong":
        count_field("rounds", 300)
        size_field(64)
        out["qos"] = _validate_qos(section.get("qos"), "workload.qos", source)
    elif kind == "bulk":
        count_field("messages", 60)
        size_field(512)
        out["interval"] = parse_duration(section.get("interval", 20_000.0),
                                         "workload.interval", source)
        count_field("window", 8)
        out["qos"] = _validate_qos(section.get("qos"), "workload.qos", source)
    elif kind == "fanout":
        hybrid = "subscribers" in section
        if hybrid and "sinks" in section:
            raise ScenarioError(
                "a fanout workload takes either 'sinks' (every sink "
                "packet-accurate) or 'subscribers' (hybrid fidelity: a hot "
                "fraction packet-accurate, the cold tail fluid) — not both",
                path="workload.subscribers", source=source,
            )
        if not hybrid:
            for field in ("fidelity", "interval"):
                if field in section:
                    raise ScenarioError(
                        "workload.%s requires the hybrid fan-out mode — "
                        "set 'subscribers' instead of 'sinks'" % field,
                        path="workload.%s" % field, source=source,
                    )
        # hybrid runs pace the publisher per the calibrated envelope, so
        # their natural message count is far below the classic default
        count_field("messages", 64 if hybrid else 300)
        size_field(1024)
        if hybrid:
            count_field("subscribers", None)
            if "interval" in section:
                out["interval"] = parse_duration(
                    section["interval"], "workload.interval", source)
            if "fidelity" in section:
                out["fidelity"] = _validate_fidelity(
                    section["fidelity"], "workload.fidelity", source)
        else:
            count_field("sinks", 4)
        out["qos"] = _validate_qos(section.get("qos"), "workload.qos", source)
        if hybrid and out["qos"]["time_sensitivity"] == "time-sensitive" \
                and out.get("fidelity", {}).get("hot_fraction") != 1.0:
            raise ScenarioError(
                "time-sensitive flows are always packet-accurate: the fluid "
                "tier aggregates away per-packet TSN guarantees — use "
                "'sinks', or set fidelity.hot_fraction to 1.0",
                path="workload.qos.time_sensitivity", source=source,
            )
    elif kind == "closed_loop":
        out["clients"] = _validate_clients(section.get("clients", 4), source)
        out["think"] = parse_duration(section.get("think", 10_000.0),
                                      "workload.think", source)
        think_dist = section.get("think_dist", "exponential")
        if think_dist not in ("fixed", "exponential"):
            raise ScenarioError(
                "unknown think_dist %r (choose from fixed, exponential)"
                % (think_dist,), path="workload.think_dist", source=source,
            )
        out["think_dist"] = think_dist
        size_field(64)
        count_field("outstanding", 1)
        out["warmup"] = parse_duration(section.get("warmup", 400_000.0),
                                       "workload.warmup", source)
        out["window"] = parse_duration(
            section.get("window", 2_000_000.0), "workload.window", source)
        if out["window"] <= 0:
            raise ScenarioError("window must be > 0 (it divides the stable "
                                "region)", path="workload.window",
                                source=source)
        count_field("windows", 3)
        out["cooldown"] = parse_duration(
            section.get("cooldown", 100_000.0), "workload.cooldown", source)
        epsilon = section.get("epsilon", 0.05)
        if isinstance(epsilon, bool) or not isinstance(epsilon, (int, float)) \
                or not 0.0 < float(epsilon) < 1.0:
            raise ScenarioError(
                "epsilon (the interactive-law residual tolerance) must be "
                "a number in (0, 1), got %r" % (epsilon,),
                path="workload.epsilon", source=source,
            )
        out["epsilon"] = float(epsilon)
        out["qos"] = _validate_qos(section.get("qos"), "workload.qos", source)
    elif kind == "baseline":
        for field, default in (("system", "insane_fast"),
                               ("baseline", "udp_nonblocking")):
            name = section.get(field, default)
            if name not in BASELINE_SYSTEMS:
                raise ScenarioError(
                    "unknown system %r (choose from %s)"
                    % (name, ", ".join(BASELINE_SYSTEMS)),
                    path="workload.%s" % field, source=source,
                )
            out[field] = name
        count_field("rounds", 300)
        size_field(64)
    # else: city — nothing beyond the shared datapath pin below

    datapath = section.get("datapath")
    if datapath is not None:
        if kind in ("bulk", "baseline"):
            raise ScenarioError(
                "a %s workload cannot pin a datapath (bulk follows its QoS; "
                "baseline systems pick their own stack)" % kind,
                path="workload.datapath", source=source,
            )
        if datapath not in DATAPATHS:
            raise ScenarioError(
                "unknown datapath %r (choose from %s)"
                % (datapath, ", ".join(DATAPATHS)),
                path="workload.datapath", source=source,
            )
        out["datapath"] = datapath
    return out


def _validate_faults(section, source):
    from repro.scenario.profiles import IMPAIRMENT_PROFILES

    if section is None:
        return []
    if not isinstance(section, list):
        raise ScenarioError("faults must be a list of fault records",
                            path="faults", source=source)
    normalized = []
    for index, record in enumerate(section):
        path = "faults[%d]" % index
        if not isinstance(record, dict):
            raise ScenarioError("a fault record must be a mapping",
                                path=path, source=source)
        if "profile" in record:
            extra = sorted(set(record) - {"profile"})
            if extra:
                raise ScenarioError(
                    "a profile replay takes no other fields (got %s)"
                    % ", ".join(extra), path=path, source=source,
                )
            name = record["profile"]
            profile = IMPAIRMENT_PROFILES.get(name)
            if profile is None:
                raise ScenarioError(
                    "unknown impairment profile %r (recorded profiles: %s)"
                    % (name, ", ".join(sorted(IMPAIRMENT_PROFILES))),
                    path=path + ".profile", source=source,
                )
            records = profile["faults"]
        else:
            records = [record]
        for offset, fault in enumerate(records):
            where = path if "profile" not in record else \
                "%s.profile[%d]" % (path, offset)
            if fault.get("kind") not in INJECTOR_KINDS:
                raise ScenarioError(
                    "unknown fault kind %r (known: %s)"
                    % (fault.get("kind"), ", ".join(sorted(INJECTOR_KINDS))),
                    path=where + ".kind", source=source,
                )
            try:
                injector = _injector_from_record(fault, index)
            except FaultInjectionError as exc:
                raise ScenarioError(str(exc), path=where,
                                    source=source) from None
            normalized.append(injector.to_dict())
    return normalized


def _validate_slo(section, spec, source):
    from repro.scenario.slo import validate_slo_section

    if section is None:
        raise ScenarioError(
            "a scenario must assert at least one SLO (an unverified "
            "scenario is a benchmark, not a check)", path="slo",
            source=source,
        )
    if not isinstance(section, dict) or not section:
        raise ScenarioError("slo must be a non-empty mapping of assertions",
                            path="slo", source=source)
    return validate_slo_section(section, spec, source)


# -- the public surface --------------------------------------------------------

def validate_scenario(document, source=None):
    """Validate + normalize one scenario document; returns the spec dict.

    The returned spec is canonical JSON (durations in ns, sizes in bytes,
    QoS as enum values, profiles expanded), carries ``schema``/``seed``,
    and is exactly the cell payload :func:`repro.scenario.runner.
    run_scenario_cell` executes.
    """
    if not isinstance(document, dict):
        raise ScenarioError(
            "a scenario document must be a mapping, got %s"
            % type(document).__name__, source=source,
        )
    schema = document.get("schema", SCENARIO_SCHEMA)
    if schema != SCENARIO_SCHEMA:
        raise ScenarioError(
            "unsupported scenario schema %r (this code understands %d)"
            % (schema, SCENARIO_SCHEMA), path="schema", source=source,
        )
    _reject_unknown(
        document,
        ("schema", "scenario", "description", "seed", "topology",
         "workload", "faults", "slo"),
        "", source,
    )
    name = _require(document, "scenario", str, "", source, required=True)
    if not _NAME_RE.match(name):
        raise ScenarioError(
            "scenario name %r must be lowercase [a-z0-9._-]" % name,
            path="scenario", source=source,
        )
    seed = document.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
        raise ScenarioError("seed must be a non-negative integer, got %r"
                            % (seed,), path="seed", source=source)
    spec = {
        "schema": SCENARIO_SCHEMA,
        "scenario": name,
        "description": _require(document, "description", str, "", source,
                                default=""),
        "seed": seed,
        "topology": _validate_topology(document.get("topology"), source),
        "workload": _validate_workload(
            _require(document, "workload", dict, "", source, required=True),
            source,
        ),
        "faults": _validate_faults(document.get("faults"), source),
    }
    spec["slo"] = _validate_slo(document.get("slo"), spec, source)
    generated = spec["topology"].get("kind") == "generated"
    if (spec["workload"]["kind"] == "city") != generated:
        raise ScenarioError(
            "a city workload runs on a generated topology and vice versa "
            "— pair workload.kind: city with topology.kind: generated",
            path="workload.kind", source=source,
        )
    if generated and spec["faults"]:
        raise ScenarioError(
            "fault injection targets testbed links; generated topologies "
            "do not take a faults section (drop it, or use a testbed "
            "topology)", path="faults", source=source,
        )
    if generated:
        profile_name = spec["topology"]["spec"]["profile"]
        effective_datapath = spec["workload"].get(
            "datapath", spec["topology"]["spec"]["datapath"])
    else:
        profile_name = spec["topology"]["profile"]
        effective_datapath = spec["workload"].get("datapath")
    if effective_datapath == "rdma" and profile_name == "cloud":
        # the cloud profile models RoCE-less NICs; keep the pin honest
        raise ScenarioError(
            "the cloud topology profile has no RDMA-capable NIC; pin rdma "
            "on the local profile", path="workload.datapath", source=source,
        )
    # the normalized spec must be canonically JSON-able (it becomes a
    # sweep cell); this raises loudly on any non-JSON leftovers
    json.dumps(spec, sort_keys=True)
    return spec


def parse_scenario(text, source=None):
    """Parse YAML/JSON text into a validated, normalized spec."""
    document = None
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise ScenarioError("invalid JSON: %s" % exc, source=source) from None
    else:
        try:
            import yaml
        except ImportError:  # pragma: no cover - the container ships PyYAML
            raise ScenarioError(
                "PyYAML is not installed; write the scenario as JSON or "
                "install pyyaml", source=source,
            ) from None
        try:
            document = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError("invalid YAML: %s" % exc, source=source) from None
    return validate_scenario(document, source=source)


def load_scenario(path):
    """Load + validate one scenario file (.yaml/.yml/.json)."""
    with open(path) as handle:
        return parse_scenario(handle.read(), source=str(path))
