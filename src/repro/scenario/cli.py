"""``insane scenario``: run, validate, or list scenario suites.

Subcommands::

    insane scenario run [PATH ...] [--workers N] [--seed S] [--json OUT]
    insane scenario validate [PATH ...]
    insane scenario list

``run`` executes every scenario under the given files/directories (the
built-in corpus when none are given) through the deterministic sweep
executor and prints one PASS/FAIL line per scenario plus the suite's
merged digest; exit status is 0 iff every SLO held.  ``validate``
schema-checks without running; ``list`` shows the shipped corpus.
"""

import argparse
import sys

from repro.cli.common import add_execution_options, make_cache
from repro.core.errors import ScenarioError


def _cmd_run(args):
    from repro.report import write_reports
    from repro.scenario.runner import builtin_corpus_dir, run_suite
    from repro.scenario.slo import format_assertions

    paths = args.paths or [builtin_corpus_dir()]
    report, sweep = run_suite(paths, workers=args.workers,
                              cache=make_cache(args), seed=args.seed)
    data = report.data
    for payload in data["scenarios"]:
        mark = "PASS" if payload["ok"] else "FAIL"
        print("%s %-28s seed=%-4d %s" % (mark, payload["scenario"],
                                         payload["seed"],
                                         payload["metrics_digest"][:12]))
        if args.verbose or not payload["ok"]:
            print(format_assertions(payload["slo"]["assertions"],
                                    indent="    "))
    print("scenario: %d/%d passed, merged digest %s "
          "(%d worker(s), %d cache hit(s))"
          % (data["passed"], data["total"], data["merged_digest"],
             sweep.workers, sweep.cache_hits))
    if args.json:
        write_reports(args.json, [report])
        print("suite report appended to %s" % args.json)
    return 0 if data["ok"] else 1


def _cmd_validate(args):
    from repro.scenario.runner import builtin_corpus_dir, discover_scenarios
    from repro.scenario.schema import load_scenario

    paths = args.paths or [builtin_corpus_dir()]
    seen = {}
    for filename in discover_scenarios(paths):
        spec = load_scenario(filename)
        name = spec["scenario"]
        if name in seen:
            raise ScenarioError(
                "duplicate scenario name %r (also defined in %s)"
                % (name, seen[name]), source=filename,
            )
        seen[name] = filename
        print("ok   %-28s %-10s %s" % (name, spec["workload"]["kind"],
                                       filename))
    print("scenario: %d file(s) valid" % len(seen))
    return 0


def _cmd_list(args):
    from repro.scenario.runner import builtin_corpus_dir, discover_scenarios
    from repro.scenario.schema import load_scenario

    corpus = builtin_corpus_dir()
    specs = [load_scenario(f) for f in discover_scenarios(corpus)]
    for spec in specs:
        print("%-28s %-10s seed=%-4d %s"
              % (spec["scenario"], spec["workload"]["kind"], spec["seed"],
                 spec.get("description", "")))
    print("%d scenario(s) in the built-in corpus (%s)" % (len(specs), corpus))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="insane scenario",
        description="Declarative scenarios: workload + topology + faults "
                    "+ SLO assertions, compiled onto the simulated stack.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run scenarios and evaluate their SLOs"
    )
    run.add_argument("paths", nargs="*", metavar="PATH",
                     help="scenario files or directories "
                          "(default: the built-in corpus)")
    add_execution_options(
        run, seed=None,
        workers_help="shard scenarios across N worker processes (the "
                     "merged digest is bit-identical at any worker count)",
        json_help="append the suite RunReport to this JSON file",
    )
    run.add_argument("-v", "--verbose", action="store_true",
                     help="print every SLO assertion, not just failures")
    run.set_defaults(func=_cmd_run)

    validate = sub.add_parser(
        "validate", help="schema-check scenario files without running them"
    )
    validate.add_argument("paths", nargs="*", metavar="PATH",
                          help="scenario files or directories "
                               "(default: the built-in corpus)")
    validate.set_defaults(func=_cmd_validate)

    lst = sub.add_parser("list", help="list the built-in scenario corpus")
    lst.set_defaults(func=_cmd_list)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ScenarioError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return exc.code


if __name__ == "__main__":
    sys.exit(main())
