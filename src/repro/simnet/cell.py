"""Isolated execution of one experiment *cell*.

A cell is the sharding unit of the parallel sweep executor
(:mod:`repro.parallel`): one independent ``(experiment, parameters)``
point — a single fig5/fig8a/fig8b grid entry, one fault-sweep scenario,
one fuzzed workload spec.  Cells are plain JSON-able dicts::

    {"kind": "bench.throughput",
     "params": {"system": "insane_fast", "size": 1024,
                "messages": 20000, "seed": 0}}

:func:`run_cell` is the single entrypoint every worker process (and the
serial fallback) goes through.  It guarantees *isolation*: each cell gets
a freshly built :class:`~repro.simnet.Simulator`/testbed (every registered
runner constructs its own), derives any missing seed deterministically
from the cell key, and resets the known process-global counters first —
so a cell's payload is bit-identical whether it runs first or last in a
long-lived worker, in the parent process, or alone.  That property is
what lets the sweep executor promise digest-equal results at any worker
count.

The registry maps cell kinds to ``"module:function"`` strings, resolved
lazily inside the worker — this module never imports the bench or
validate layers, so the kernel stays dependency-free and spawn-started
workers import only what the cell actually needs.
"""

import hashlib
import importlib
import json

#: kind -> "module:function" runner target, resolved lazily per worker.
#: Runner functions take the cell's params as keyword arguments and must
#: return a JSON-serializable payload that is a pure function of those
#: params (plus the code itself) — never of wall-clock time, process
#: identity, or module-level state.
CELL_RUNNERS = {
    "bench.pingpong": "repro.bench.sweep:run_pingpong_cell",
    "bench.throughput": "repro.bench.sweep:run_throughput_cell",
    "bench.multisink": "repro.bench.sweep:run_multisink_cell",
    "bench.loss": "repro.bench.faults:run_loss_cell",
    "bench.perf": "repro.bench.sweep:run_perf_workload_cell",
    "validate.spec": "repro.validate.parallel:run_spec_cell",
    "validate.differential": "repro.validate.parallel:run_differential_cell",
    "validate.fuzz": "repro.validate.parallel:run_fuzz_cell",
    "scenario.run": "repro.scenario.runner:run_scenario_cell",
    "loadgen.closed_loop": "repro.loadgen.capacity:run_closed_loop_cell",
    "bench.city": "repro.dist.sync:run_city_cell",
}


def register_cell_kind(kind, target):
    """Register (or override) a cell kind.

    ``target`` is a ``"module:function"`` string so the registration is
    picklable and survives the spawn boundary: workers re-resolve it by
    name instead of receiving a function object.
    """
    if ":" not in target:
        raise ValueError("target must be 'module:function', got %r" % (target,))
    CELL_RUNNERS[kind] = target


def cell_key(cell):
    """The canonical identity of a cell: sorted, separator-stable JSON.

    Key order in the params dict does not matter; any non-JSON value is a
    caller bug and raises here, loudly, rather than producing an unstable
    key.
    """
    return json.dumps(cell, sort_keys=True, separators=(",", ":"))


def derive_seed(key):
    """A deterministic 63-bit seed derived from a cell key.

    Workers never share an rng: a cell that does not pin its own ``seed``
    param draws one from the sha256 of its key, so the stream is a pure
    function of the cell — independent of which worker runs it, or in
    what order.
    """
    if not isinstance(key, str):
        key = cell_key(key)
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _reset_process_globals():
    """Reset known process-global mutable state before a cell runs.

    The audit behind this list: the packet sequence counter in
    :mod:`repro.netstack.packet` is the only module-level counter that
    leaks across simulations (rng state is always instance-owned —
    ``Simulator.rng``, ``random_spec``'s private ``random.Random`` — and
    the datapath registry is populated once at import with immutable
    classes).
    """
    from repro.netstack.packet import reset_packet_counter

    reset_packet_counter()


def run_cell(cell):
    """Execute one cell in isolation and return its JSON-able payload.

    This is the only entrypoint the sweep executor uses, serial or
    parallel, so both paths share the exact same isolation guarantees.
    """
    kind = cell.get("kind")
    target = CELL_RUNNERS.get(kind)
    if target is None:
        raise KeyError(
            "unknown cell kind %r (registered: %s)"
            % (kind, ", ".join(sorted(CELL_RUNNERS)))
        )
    module_name, _, func_name = target.partition(":")
    runner = getattr(importlib.import_module(module_name), func_name)
    params = dict(cell.get("params") or {})
    if "seed" not in params:
        params["seed"] = derive_seed(cell_key(cell))
    _reset_process_globals()
    return runner(**params)
