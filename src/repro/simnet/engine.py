"""The event loop at the heart of the simulation kernel.

A :class:`Simulator` owns virtual time (nanoseconds) and a heap of scheduled
callbacks.  Everything else in the repository — NICs, switches, datapath
plugins, the INSANE runtime — is expressed either as plain callbacks scheduled
here or as generator-based :class:`~repro.simnet.process.Process` objects.
"""

import heapq
import random

from repro.simnet.errors import SimulationError


class EventHandle:
    """A cancellable reference to a scheduled callback."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from running.  Safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other):
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulation-owned :class:`random.Random`.  All stochastic
        models (latency jitter, workload generators) must draw from
        :attr:`rng` so that a run is reproducible from its seed alone.
    """

    def __init__(self, seed=0):
        self._now = 0
        self._heap = []
        self._seq = 0
        self.rng = random.Random(seed)
        #: (process_name, exception) for every process that died with an
        #: unhandled exception — checked by tests so failures cannot pass
        #: silently.
        self.failures = []

    @property
    def now(self):
        """Current virtual time in nanoseconds."""
        return self._now

    def schedule(self, delay, fn, *args):
        """Run ``fn(*args)`` after ``delay`` ns of virtual time.

        Returns an :class:`EventHandle` that can be cancelled.
        """
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay=%r)" % (delay,))
        self._seq += 1
        handle = EventHandle(self._now + delay, self._seq, fn, args)
        heapq.heappush(self._heap, handle)
        return handle

    def schedule_at(self, time, fn, *args):
        """Run ``fn(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, fn, *args)

    def process(self, generator, name=None):
        """Start a cooperative process; see :mod:`repro.simnet.process`."""
        from repro.simnet.process import Process

        return Process(self, generator, name=name)

    def run(self, until=None):
        """Execute events until the heap drains or ``until`` ns is reached.

        Returns the number of events executed.
        """
        executed = 0
        heap = self._heap
        while heap:
            handle = heap[0]
            if handle.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and handle.time > until:
                self._now = until
                return executed
            heapq.heappop(heap)
            self._now = handle.time
            handle.fn(*handle.args)
            executed += 1
        if until is not None and until > self._now:
            self._now = until
        return executed

    def step(self):
        """Execute exactly one pending event; return False if none remain."""
        heap = self._heap
        while heap:
            handle = heapq.heappop(heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            handle.fn(*handle.args)
            return True
        return False

    def peek(self):
        """Time of the next pending event, or ``None`` when idle."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None
