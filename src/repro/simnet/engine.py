"""The event loop at the heart of the simulation kernel.

A :class:`Simulator` owns virtual time (nanoseconds) and the pending-event
structures.  Everything else in the repository — NICs, switches, datapath
plugins, the INSANE runtime — is expressed either as plain callbacks
scheduled here or as generator-based :class:`~repro.simnet.process.Process`
objects.

The loop is the hottest code in the repository (every simulated packet costs
dozens of events), so the common case is kept allocation-free:

* :meth:`Simulator.schedule` stores plain ``(time, seq, fn, args)`` tuples
  on the heap — tuple ordering is resolved in C, with no per-event handle
  object and no Python-level ``__lt__`` during heap sifts.  Only
  :meth:`Simulator.schedule_cancellable` allocates an :class:`EventHandle`,
  for the rare timer that may be cancelled (retransmission timers, parked
  polling-thread wakeups).
* Zero-delay events — the bulk of the traffic: store hand-offs, signal
  drains, process starts — bypass the heap entirely through a FIFO *lane*
  (a deque append/popleft per event).  Lane entries carry the same global
  sequence numbers as heap entries, so execution order is bit-identical to
  a pure-heap engine: see :data:`repro.simnet.legacy.LegacySimulator` and
  the golden-trace tests.
* Cancelled timers are dropped lazily; when they exceed half the heap the
  heap is compacted in place, keeping ``len(_heap)`` bounded under timer
  churn (e.g. a retransmit timer cancelled per delivered packet).
* Burst chains (:mod:`repro.simnet.burst`) may *inline-execute* their next
  step — advancing :attr:`Simulator.now` and ``_executed`` directly —
  whenever the step is provably the next event (empty lane, no earlier or
  equal heap entry, inside the ``until`` bound, no observer).  The run
  loop publishes the active ``until`` bound through ``_until`` so chains
  can honour it.

Determinism contract: with a fixed seed, event execution order is a pure
function of the sequence of ``schedule*`` calls — same seed, same code ⇒
bit-identical simulated timestamps, results, and rng stream.
"""

import random
from collections import deque
from heapq import heapify, heappop, heappush

from repro.simnet.errors import SimulationError

#: never compact below this many cancelled entries (small heaps are cheap
#: to scan lazily; compaction would thrash).
_COMPACT_MIN = 64

#: absolute delays below this (ns) are float-arithmetic dust, not genuine
#: attempts to schedule in the past — ``schedule_at`` clamps them to zero.
_PAST_EPSILON_NS = 1e-6


class EventHandle:
    """A cancellable reference to a callback scheduled on the heap.

    Only produced by :meth:`Simulator.schedule_cancellable`; the plain
    :meth:`Simulator.schedule` fast path does not allocate handles.
    """

    __slots__ = ("sim", "fn", "args", "cancelled", "pending")

    def __init__(self, sim, fn, args):
        self.sim = sim
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: True while the handle's heap entry exists and has neither fired
        #: nor been purged.  ``_cancelled`` counts exactly the handles with
        #: ``cancelled and pending`` — cancelling a timer that already fired
        #: must not inflate the counter (it has no heap entry to purge).
        self.pending = True

    def cancel(self):
        """Prevent the callback from running.  Safe to call repeatedly,
        including after the timer has already fired (a no-op then)."""
        if self.cancelled:
            return
        self.cancelled = True
        if not self.pending:
            return
        sim = self.sim
        sim._cancelled += 1
        if sim._cancelled >= _COMPACT_MIN and sim._cancelled * 2 > len(sim._heap):
            sim._compact()


class PeriodicHandle:
    """A self-rearming aggregate event (fluid-tier drains, batched stats).

    The callback runs every ``interval_ns`` of virtual time and returns a
    truthy value to stay armed; a falsy return parks the handle (the heap
    entry is *not* re-created, so an idle periodic never keeps an
    unbounded :meth:`Simulator.run` alive).  :meth:`kick` re-arms a parked
    handle — producers call it when new work arrives; :meth:`cancel`
    stops the cycle for good.
    """

    __slots__ = ("sim", "interval_ns", "fn", "cancelled", "_armed")

    def __init__(self, sim, interval_ns, fn):
        if interval_ns <= 0:
            raise SimulationError(
                "periodic interval must be > 0, got %r" % (interval_ns,)
            )
        self.sim = sim
        self.interval_ns = interval_ns
        self.fn = fn
        self.cancelled = False
        self._armed = False

    def kick(self, delay=None):
        """Arm the next tick (no-op while already armed or cancelled)."""
        if self.cancelled or self._armed:
            return
        self._armed = True
        self.sim.schedule(
            self.interval_ns if delay is None else delay, self._fire
        )

    def _fire(self):
        self._armed = False
        if self.cancelled:
            return
        if self.fn():
            self.kick()

    def cancel(self):
        """Stop the cycle; a pending tick becomes a no-op."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulation-owned :class:`random.Random`.  All stochastic
        models (latency jitter, workload generators) must draw from
        :attr:`rng` so that a run is reproducible from its seed alone.
    """

    #: When True, :meth:`process` builds pre-overhaul ``LegacyProcess``
    #: trampolines and the datapath/polling layers revert to their
    #: pre-overhaul behaviour (per-stage charges, unconditional poll
    #: passes).  Only the perf harness sets this, to measure the full
    #: pre-change stack; see :mod:`repro.simnet.legacy`.
    legacy_stack = False

    #: Optional observer (see :class:`repro.obs.EngineObserver`) notified
    #: once per executed event via ``on_event(now)``.  A class attribute
    #: checked once per :meth:`run` call — with no observer installed the
    #: hand-optimized loops below run untouched, so observability costs
    #: nothing when off.
    observer = None

    def __init__(self, seed=0):
        #: current virtual time in nanoseconds — a plain attribute, not a
        #: property: it is read on every schedule/cost call in the stack.
        self.now = 0
        #: timed events: ``(time, seq, fn, args)`` tuples, or
        #: ``(time, seq, None, EventHandle)`` for cancellable timers.  ``seq``
        #: is unique, so tuple comparison never reaches ``fn``.
        self._heap = []
        #: zero-delay events at the current instant: ``(seq, fn, args)``.
        #: Invariant: virtual time never advances while the lane is occupied,
        #: so every lane entry fires at ``self.now``.
        self._lane = deque()
        self._seq = 0
        self._cancelled = 0   # cancelled handles still sitting in the heap
        self._executed = 0
        #: the ``until`` bound of the run() call currently draining events
        #: (None when unbounded).  Burst chains consult it before
        #: inline-executing a step that would advance virtual time.
        self._until = None
        self._peak_heap = 0
        self._purged = 0
        self.rng = random.Random(seed)
        #: (process_name, exception) for every process that died with an
        #: unhandled exception — checked by tests so failures cannot pass
        #: silently.
        self.failures = []

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay, fn, *args):
        """Run ``fn(*args)`` after ``delay`` ns of virtual time.

        This is the fire-and-forget fast path: no handle is allocated and
        nothing is returned.  Use :meth:`schedule_cancellable` for the rare
        timer that may need cancelling.
        """
        if delay <= 0:
            if delay < 0:
                raise SimulationError(
                    "cannot schedule in the past (delay=%r)" % (delay,)
                )
            self._seq = seq = self._seq + 1
            self._lane.append((seq, fn, args))
            return
        self._seq = seq = self._seq + 1
        heap = self._heap
        heappush(heap, (self.now + delay, seq, fn, args))
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)

    def schedule_abs(self, time, fn, *args):
        """Run ``fn(*args)`` at the exact absolute instant ``time`` ns.

        ``schedule(time - now)`` re-rounds the instant through
        ``now + delay``, which is not bit-identical for every float.
        Fused hot-path hops (link propagation + NIC rx DMA, coalesced
        IPC-plus-processing sleeps) use this to land on precisely the
        timestamp the unfused multi-event schedule would have produced.
        An event at the current instant goes on the heap, not the lane:
        the run loop's time-and-seq tie check already interleaves it
        correctly with pending zero-delay work.
        """
        now = self.now
        if time < now:
            if now - time < _PAST_EPSILON_NS:
                time = now
            else:
                raise SimulationError(
                    "cannot schedule in the past (time=%r < now=%r)"
                    % (time, now)
                )
        self._seq = seq = self._seq + 1
        heap = self._heap
        heappush(heap, (time, seq, fn, args))
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)

    def schedule_cancellable(self, delay, fn, *args):
        """Like :meth:`schedule`, but returns a cancellable :class:`EventHandle`."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay=%r)" % (delay,))
        self._seq = seq = self._seq + 1
        handle = EventHandle(self, fn, args)
        heap = self._heap
        heappush(heap, (self.now + delay, seq, None, handle))
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)
        return handle

    def schedule_at(self, time, fn, *args):
        """Run ``fn(*args)`` at absolute virtual time ``time``.

        A ``time`` computed by float arithmetic may land a hair before
        ``now`` (e.g. ``now + a - a``); deltas smaller than a millionth of a
        nanosecond are clamped to "now" rather than rejected.  Genuinely
        past times still raise :class:`SimulationError`.
        """
        delay = time - self.now
        if -_PAST_EPSILON_NS < delay < 0:
            delay = 0
        return self.schedule(delay, fn, *args)

    def schedule_cancellable_at(self, time, fn, *args):
        """Cancellable variant of :meth:`schedule_at`."""
        delay = time - self.now
        if -_PAST_EPSILON_NS < delay < 0:
            delay = 0
        return self.schedule_cancellable(delay, fn, *args)

    def schedule_periodic(self, interval_ns, fn, start=False):
        """A :class:`PeriodicHandle` running ``fn()`` every ``interval_ns``.

        The handle starts parked unless ``start`` is true; ``fn`` returning
        falsy parks it again (see :class:`PeriodicHandle`).  This is the
        engine-side aggregate event used by the fluid fidelity tier: one
        heap entry per (host, datapath) aggregate, regardless of how many
        flows it models.
        """
        handle = PeriodicHandle(self, interval_ns, fn)
        if start:
            handle.kick()
        return handle

    def process(self, generator, name=None):
        """Start a cooperative process; see :mod:`repro.simnet.process`."""
        if self.legacy_stack:
            from repro.simnet.legacy import LegacyProcess

            return LegacyProcess(self, generator, name=name)
        from repro.simnet.process import Process

        return Process(self, generator, name=name)

    # -- execution --------------------------------------------------------

    def run(self, until=None):
        """Execute events until everything drains or ``until`` ns is reached.

        Returns the number of events executed.
        """
        if self.observer is not None:
            return self._run_observed(until)
        executed = 0
        # Burst chains bump _executed directly for inline-executed steps;
        # returning the _executed delta keeps the return value equal to
        # stats()["events_executed"] growth either way.
        start_executed = self._executed
        heap = self._heap
        lane = self._lane
        lane_pop = lane.popleft
        if until is None:
            # Unbounded drain — the common case (every benchmark and most
            # tests): no per-event deadline check, pop-then-test instead of
            # peek-then-pop.
            while True:
                if lane:
                    if heap:
                        entry = heap[0]
                        if entry[0] == self.now and entry[1] < lane[0][0]:
                            heappop(heap)
                            fn = entry[2]
                            if fn is None:
                                handle = entry[3]
                                if handle.cancelled:
                                    handle.pending = False
                                    self._cancelled -= 1
                                    self._purged += 1
                                    continue
                                handle.pending = False
                                handle.fn(*handle.args)
                            else:
                                fn(*entry[3])
                            executed += 1
                            continue
                    entry = lane_pop()
                    entry[1](*entry[2])
                    executed += 1
                    continue
                if not heap:
                    break
                entry = heappop(heap)
                fn = entry[2]
                if fn is None:
                    handle = entry[3]
                    if handle.cancelled:
                        handle.pending = False
                        self._cancelled -= 1
                        self._purged += 1
                        continue
                    handle.pending = False
                    self.now = entry[0]
                    handle.fn(*handle.args)
                else:
                    self.now = entry[0]
                    fn(*entry[3])
                executed += 1
            self._executed += executed
            return self._executed - start_executed
        # Bounded drain: publish the deadline so burst chains refuse to
        # inline-execute a step past it (they would otherwise advance
        # ``now`` beyond ``until`` from inside a callback).
        self._until = until
        try:
            while True:
                if lane:
                    # A heap event at the current instant that was scheduled
                    # before the lane head must run first (global seq order).
                    if heap:
                        entry = heap[0]
                        if entry[0] == self.now and entry[1] < lane[0][0]:
                            heappop(heap)
                            fn = entry[2]
                            if fn is None:
                                handle = entry[3]
                                if handle.cancelled:
                                    handle.pending = False
                                    self._cancelled -= 1
                                    self._purged += 1
                                    continue
                                handle.pending = False
                                handle.fn(*handle.args)
                            else:
                                fn(*entry[3])
                            executed += 1
                            continue
                    entry = lane_pop()
                    entry[1](*entry[2])
                    executed += 1
                    continue
                if not heap:
                    break
                entry = heap[0]
                fn = entry[2]
                if fn is None and entry[3].cancelled:
                    heappop(heap)
                    entry[3].pending = False
                    self._cancelled -= 1
                    self._purged += 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    self.now = until
                    self._executed += executed
                    return self._executed - start_executed
                heappop(heap)
                self.now = time
                if fn is None:
                    handle = entry[3]
                    handle.pending = False
                    handle.fn(*handle.args)
                else:
                    fn(*entry[3])
                executed += 1
            if until is not None and until > self.now:
                self.now = until
            self._executed += executed
            return self._executed - start_executed
        finally:
            self._until = None

    def _run_observed(self, until):
        """The observed drain loop: :meth:`step` plus an ``on_event``
        callback per event.  Deliberately separate from :meth:`run` so the
        unobserved fast paths stay branch-free; event *order* is identical
        (``step`` shares the lane/heap arbitration logic)."""
        on_event = self.observer.on_event
        step = self.step
        executed = 0
        if until is None:
            while step():
                executed += 1
                on_event(self.now)
        else:
            while True:
                upcoming = self.peek()
                if upcoming is None or upcoming > until:
                    break
                if not step():
                    break
                executed += 1
                on_event(self.now)
            if until > self.now:
                self.now = until
        return executed

    def step(self):
        """Execute exactly one pending event; return False if none remain."""
        heap = self._heap
        lane = self._lane
        while True:
            if lane:
                if heap:
                    entry = heap[0]
                    if entry[0] == self.now and entry[1] < lane[0][0]:
                        heappop(heap)
                        fn = entry[2]
                        if fn is None:
                            handle = entry[3]
                            if handle.cancelled:
                                handle.pending = False
                                self._cancelled -= 1
                                self._purged += 1
                                continue
                            handle.pending = False
                            handle.fn(*handle.args)
                        else:
                            fn(*entry[3])
                        self._executed += 1
                        return True
                entry = lane.popleft()
                entry[1](*entry[2])
                self._executed += 1
                return True
            if not heap:
                return False
            entry = heappop(heap)
            fn = entry[2]
            if fn is None:
                handle = entry[3]
                if handle.cancelled:
                    handle.pending = False
                    self._cancelled -= 1
                    self._purged += 1
                    continue
                handle.pending = False
                self.now = entry[0]
                handle.fn(*handle.args)
            else:
                self.now = entry[0]
                fn(*entry[3])
            self._executed += 1
            return True

    def peek(self):
        """Time of the next pending event, or ``None`` when idle."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2] is None and entry[3].cancelled:
                heappop(heap)
                entry[3].pending = False
                self._cancelled -= 1
                self._purged += 1
                continue
            break
        if self._lane:
            return self.now
        return heap[0][0] if heap else None

    # -- maintenance ------------------------------------------------------

    def _compact(self):
        """Drop cancelled timers and re-heapify (in place: ``run`` holds a
        reference to the list).

        An entry is purgeable iff its *handle* is cancelled — regardless of
        what the payload slot holds, so a payload-carrying cancellable
        entry cannot survive its own cancellation.  Bookkeeping is per
        purged entry (never a blanket reset): each drop decrements the
        cancelled counter exactly once, keeping
        ``stats()["cancelled_pending"]`` truthful even when cancelled
        handles have already left the heap through another path.
        """
        heap = self._heap
        kept = []
        purged = 0
        for entry in heap:
            handle = entry[3]
            if isinstance(handle, EventHandle) and handle.cancelled:
                handle.pending = False
                purged += 1
            else:
                kept.append(entry)
        heap[:] = kept
        heapify(heap)
        self._purged += purged
        self._cancelled -= purged

    def stats(self):
        """Counters for perf diagnosis, surfaced in benchmark reports."""
        return {
            "engine": "fast",
            "events_executed": self._executed,
            "heap_size": len(self._heap),
            "lane_size": len(self._lane),
            "peak_heap": self._peak_heap,
            "cancelled_pending": self._cancelled,
            "cancelled_purged": self._purged,
        }
