"""Exceptions raised by the simulation kernel."""


class SimulationError(RuntimeError):
    """Base class for all kernel-level simulation errors."""


class StoreFullError(SimulationError):
    """Raised by :meth:`Store.put_nowait` when the store is at capacity."""


class DegenerateWindowError(SimulationError):
    """Raised by :class:`RateMeter` rate queries when samples exist but the
    observed window has zero width (e.g. a single message recorded without
    its serialization window) — returning ``0.0`` would silently zero the
    goodput of short benchmark windows."""


class ProcessFailed(SimulationError):
    """Raised when joining a process that terminated with an exception."""

    def __init__(self, process_name, cause):
        super().__init__("process %r failed: %r" % (process_name, cause))
        self.process_name = process_name
        self.cause = cause
