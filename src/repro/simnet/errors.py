"""Exceptions raised by the simulation kernel."""


class SimulationError(RuntimeError):
    """Base class for all kernel-level simulation errors."""


class StoreFullError(SimulationError):
    """Raised by :meth:`Store.put_nowait` when the store is at capacity."""


class ProcessFailed(SimulationError):
    """Raised when joining a process that terminated with an exception."""

    def __init__(self, process_name, cause):
        super().__init__("process %r failed: %r" % (process_name, cause))
        self.process_name = process_name
        self.cause = cause
