"""Bounded stores and counted resources.

These primitives carry all queueing behaviour in the repository: NIC rings,
IPC token queues, scheduler backlogs, and memory-pool free lists are all
:class:`Store` instances, so overflow, backpressure, and drop accounting are
handled uniformly.
"""

from collections import deque

from repro.simnet.errors import StoreFullError

_UNBOUNDED = float("inf")

#: shared args tuple for ``callback(None, None)`` completions — the wake-up
#: path allocates nothing per event.
_DONE_ARGS = (None, None)


class Store:
    """A FIFO queue of items with optional capacity.

    Processes interact through ``yield Get(store)`` / ``yield Put(store,
    item)``; non-process code (plain callbacks) uses the ``*_nowait``
    variants.
    """

    def __init__(self, sim, capacity=_UNBOUNDED, name=None):
        if capacity is not _UNBOUNDED and capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        # The fast engine's zero-delay lane (None on the legacy engine):
        # ready hand-offs append the event directly, skipping a
        # ``schedule()`` call per item.  Sequence numbers are taken from
        # the same counter, so ordering is identical either way.
        self._lane = getattr(sim, "_lane", None)
        self._items = deque()
        self._getters = deque()
        self._putters = deque()
        #: optional callback invoked (synchronously) whenever an item is
        #: enqueued with no getter waiting — used by polling threads to be
        #: kicked awake without busy-waiting.
        self.on_item = None

    def __len__(self):
        return len(self._items)

    @property
    def is_full(self):
        return len(self._items) >= self.capacity

    @property
    def is_empty(self):
        return not self._items

    # -- non-blocking interface ------------------------------------------

    def put_nowait(self, item):
        """Deposit ``item`` immediately; raise :class:`StoreFullError` if full."""
        if not self.try_put(item):
            raise StoreFullError(self.name or "store")

    def try_put(self, item):
        """Deposit ``item`` if there is room; return ``True`` on success."""
        if self._getters:
            getter = self._getters.popleft()
            lane = self._lane
            if lane is None:
                self.sim.schedule(0, getter, item, None)
            else:
                sim = self.sim
                sim._seq = seq = sim._seq + 1
                lane.append((seq, getter, (item, None)))
            return True
        if len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        if self.on_item is not None:
            self.on_item()
        return True

    def try_get(self):
        """Return ``(True, item)`` if an item is available, else ``(False, None)``."""
        items = self._items
        if items:
            item = items.popleft()
            if self._putters:
                self._admit_putter()
            return True, item
        return False, None

    # -- blocking (process) interface ------------------------------------

    def add_getter(self, callback):
        """Register ``callback(item, exception)`` for the next item."""
        items = self._items
        if items:
            item = items.popleft()
            if self._putters:
                self._admit_putter()
            lane = self._lane
            if lane is None:
                self.sim.schedule(0, callback, item, None)
            else:
                sim = self.sim
                sim._seq = seq = sim._seq + 1
                lane.append((seq, callback, (item, None)))
        else:
            self._getters.append(callback)

    def add_putter(self, item, callback):
        """Deposit ``item`` when room is available, then ``callback(None, None)``."""
        if self.try_put(item):
            lane = self._lane
            if lane is None:
                self.sim.schedule(0, callback, None, None)
            else:
                sim = self.sim
                sim._seq = seq = sim._seq + 1
                lane.append((seq, callback, _DONE_ARGS))
        else:
            self._putters.append((item, callback))

    def _admit_putter(self):
        if self._putters and len(self._items) < self.capacity:
            item, callback = self._putters.popleft()
            self._items.append(item)
            lane = self._lane
            if lane is None:
                self.sim.schedule(0, callback, None, None)
            else:
                sim = self.sim
                sim._seq = seq = sim._seq + 1
                lane.append((seq, callback, _DONE_ARGS))


class Resource:
    """A counted resource (e.g. CPU cores) with FIFO acquisition."""

    def __init__(self, sim, capacity=1, name=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters = deque()

    @property
    def available(self):
        return self.capacity - self.in_use

    def try_acquire(self):
        """Acquire a unit without blocking; return ``True`` on success."""
        if self.in_use < self.capacity:
            self.in_use += 1
            return True
        return False

    def add_acquirer(self, callback):
        """Acquire a unit, calling ``callback(None, None)`` once granted."""
        if self.try_acquire():
            self.sim.schedule(0, callback, None, None)
        else:
            self._waiters.append(callback)

    def release(self):
        """Return one unit, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise RuntimeError("release without acquire on %r" % (self.name,))
        if self._waiters:
            callback = self._waiters.popleft()
            self.sim.schedule(0, callback, None, None)
        else:
            self.in_use -= 1

    def acquire_effect(self):
        """An effect suitable for ``yield`` from a process body."""
        return _Acquire(self)


class _Acquire:
    __slots__ = ("resource",)
    _tag = 0  # trampoline fallback tag: dispatched via apply()

    def __init__(self, resource):
        self.resource = resource

    def apply(self, sim, process):
        self.resource.add_acquirer(process.resume)
