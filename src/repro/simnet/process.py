"""Generator-based cooperative processes and the effects they may yield.

A process body is a Python generator.  Each ``yield`` hands an *effect* to
the kernel, which resumes the generator when the effect completes::

    def worker(sim, inbox):
        while True:
            item = yield Get(inbox)        # block until an item arrives
            yield Timeout(500)             # model 500 ns of work
            ...

    sim.process(worker(sim, inbox))

Supported effects:

``Timeout(delay)``      resume after ``delay`` ns.
``Wait(signal)``        resume when a :class:`Signal` fires (with its value).
``Get(store)``          resume with the next item from a :class:`Store`.
``Put(store, item)``    resume once ``item`` has been accepted by the store.
``Join(process)``       resume with the return value of another process.
``AnyOf(signals)``      resume when the first of several signals fires.

Yielding another :class:`Process` directly is shorthand for ``Join``.
"""

from repro.simnet.errors import ProcessFailed
from repro.simnet.events import Signal


class Timeout:
    """Suspend the process for ``delay`` ns of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay):
        self.delay = delay

    def apply(self, sim, process):
        sim.schedule(self.delay, process.resume, None)


class Wait:
    """Suspend until ``signal`` fires; resumes with the signal's value."""

    __slots__ = ("signal",)

    def __init__(self, signal):
        self.signal = signal

    def apply(self, sim, process):
        self.signal.add_waiter(process.resume)


class AnyOf:
    """Suspend until the first of ``signals`` fires.

    Resumes with ``(index, value)`` of the first signal that fired.
    """

    __slots__ = ("signals",)

    def __init__(self, signals):
        self.signals = list(signals)

    def apply(self, sim, process):
        state = {"done": False}

        def make_waiter(index):
            def waiter(value, exception):
                if state["done"]:
                    return
                state["done"] = True
                process.resume((index, value), exception)

            return waiter

        for index, signal in enumerate(self.signals):
            signal.add_waiter(make_waiter(index))


class Get:
    """Take the next item from a :class:`Store`, blocking while empty."""

    __slots__ = ("store",)

    def __init__(self, store):
        self.store = store

    def apply(self, sim, process):
        self.store.add_getter(process.resume)


class Put:
    """Deposit ``item`` into a :class:`Store`, blocking while full."""

    __slots__ = ("store", "item")

    def __init__(self, store, item):
        self.store = store
        self.item = item

    def apply(self, sim, process):
        self.store.add_putter(self.item, process.resume)


class Join:
    """Wait for another process to finish; resumes with its return value."""

    __slots__ = ("process",)

    def __init__(self, process):
        self.process = process

    def apply(self, sim, process):
        self.process.done.add_waiter(process.resume)


class Process:
    """A running generator driven by the simulator.

    Attributes
    ----------
    done:
        A :class:`Signal` fired with the generator's return value when it
        finishes, or failed with :class:`ProcessFailed` if it raises.
    """

    def __init__(self, sim, generator, name=None):
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = Signal(sim)
        self._finished = False
        sim.schedule(0, self.resume, None, None)

    @property
    def finished(self):
        return self._finished

    def resume(self, value, exception=None):
        """Advance the generator with ``value`` (or throw ``exception``)."""
        if self._finished:
            return
        try:
            if exception is not None:
                effect = self.generator.throw(exception)
            else:
                effect = self.generator.send(value)
        except StopIteration as stop:
            self._finished = True
            self.done.succeed(getattr(stop, "value", None))
            return
        except Exception as exc:  # surface the failure to joiners
            self._finished = True
            self.sim.failures.append((self.name, exc))
            self.done.fail(ProcessFailed(self.name, exc))
            return
        if isinstance(effect, Process):
            effect = Join(effect)
        effect.apply(self.sim, self)

    def interrupt(self, exception=None):
        """Throw ``exception`` (default :class:`Interrupt`) into the body."""
        self.sim.schedule(0, self.resume, None, exception or Interrupt())


class Interrupt(Exception):
    """Default exception delivered by :meth:`Process.interrupt`."""
