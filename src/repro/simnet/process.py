"""Generator-based cooperative processes and the effects they may yield.

A process body is a Python generator.  Each ``yield`` hands an *effect* to
the kernel, which resumes the generator when the effect completes::

    def worker(sim, inbox):
        while True:
            item = yield Get(inbox)        # block until an item arrives
            yield Timeout(500)             # model 500 ns of work
            ...

    sim.process(worker(sim, inbox))

Supported effects:

``Timeout(delay)``      resume after ``delay`` ns.
``Wait(signal)``        resume when a :class:`Signal` fires (with its value).
``Get(store)``          resume with the next item from a :class:`Store`.
``Put(store, item)``    resume once ``item`` has been accepted by the store.
``Join(process)``       resume with the return value of another process.
``AnyOf(signals)``      resume when the first of several signals fires.

Yielding another :class:`Process` directly is shorthand for ``Join``.
"""

from heapq import heappush

from repro.simnet.errors import ProcessFailed, SimulationError
from repro.simnet.events import Signal

#: shared args tuple for timer resumptions (``resume(None)``) — no
#: per-event allocation on the hottest path in the repository.
_NONE_ARGS = (None,)


class Timeout:
    """Suspend the process for ``delay`` ns of virtual time."""

    __slots__ = ("delay",)
    #: Trampoline dispatch tag (see :meth:`Process._resume`): the dominant
    #: yield types carry a small int so the hot dispatch is two attribute
    #: loads and an int compare instead of an isinstance/identity chain.
    #: 1=Timeout, 2=Get, 3=Put, 4=Wait, 5=TimeoutAt; 0 (or absent) falls
    #: back to ``effect.apply()``.
    _tag = 1

    def __init__(self, delay):
        self.delay = delay

    def apply(self, sim, process):
        sim.schedule(self.delay, process.resume, None)


class TimeoutAt:
    """Suspend the process until the absolute instant ``at`` ns.

    ``Timeout(at - sim.now)`` wakes at ``now + (at - now)``, which float
    rounding does not guarantee to equal ``at``.  Code that coalesces a
    chain of relative sleeps into one event computes the chain's exact
    final instant step by step and yields it here, so the wake-up is bit
    identical to the unfused schedule.
    """

    __slots__ = ("at",)
    _tag = 5

    def __init__(self, at):
        self.at = at

    def apply(self, sim, process):
        # exotic engines (no schedule_abs) fall back to a relative sleep
        schedule_abs = getattr(sim, "schedule_abs", None)
        if schedule_abs is not None:
            schedule_abs(self.at, process.resume, None)
        else:
            sim.schedule(self.at - sim.now, process.resume, None)


class Wait:
    """Suspend until ``signal`` fires; resumes with the signal's value."""

    __slots__ = ("signal",)
    _tag = 4

    def __init__(self, signal):
        self.signal = signal

    def apply(self, sim, process):
        self.signal.add_waiter(process.resume)


class AnyOf:
    """Suspend until the first of ``signals`` fires.

    Resumes with ``(index, value)`` of the first signal that fired.
    """

    __slots__ = ("signals",)
    _tag = 0

    def __init__(self, signals):
        self.signals = list(signals)

    def apply(self, sim, process):
        state = {"done": False}

        def make_waiter(index):
            def waiter(value, exception):
                if state["done"]:
                    return
                state["done"] = True
                process.resume((index, value), exception)

            return waiter

        for index, signal in enumerate(self.signals):
            signal.add_waiter(make_waiter(index))


class Get:
    """Take the next item from a :class:`Store`, blocking while empty."""

    __slots__ = ("store",)
    _tag = 2

    def __init__(self, store):
        self.store = store

    def apply(self, sim, process):
        self.store.add_getter(process.resume)


class Put:
    """Deposit ``item`` into a :class:`Store`, blocking while full."""

    __slots__ = ("store", "item")
    _tag = 3

    def __init__(self, store, item):
        self.store = store
        self.item = item

    def apply(self, sim, process):
        self.store.add_putter(self.item, process.resume)


class Join:
    """Wait for another process to finish; resumes with its return value."""

    __slots__ = ("process",)
    _tag = 0

    def __init__(self, process):
        self.process = process

    def apply(self, sim, process):
        self.process.done.add_waiter(process.resume)


class Process:
    """A running generator driven by the simulator.

    Attributes
    ----------
    done:
        A :class:`Signal` fired with the generator's return value when it
        finishes, or failed with :class:`ProcessFailed` if it raises.
    """

    def __init__(self, sim, generator, name=None):
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = Signal(sim)
        self._finished = False
        # Bound methods are allocated per attribute access; the resume
        # trampoline runs once per event, so cache them up front.
        self._send = generator.send
        self._throw = generator.throw
        # The fast engine's scheduling internals (None on the legacy
        # engine): Timeout resumptions — one per charged cost — bypass the
        # schedule() call and push the heap/lane entry directly.
        self._lane = getattr(sim, "_lane", None)
        self.resume = resume = self._resume
        sim.schedule(0, resume, None, None)

    @property
    def finished(self):
        return self._finished

    def _resume(self, value, exception=None):
        """Advance the generator with ``value`` (or throw ``exception``).

        The body is a loop rather than a single step: when a ``Get`` finds
        its item already waiting and nothing else is runnable at this
        instant (empty lane, heap strictly in the future, no observer, no
        queued getters/putters), the hand-off event is elided and the
        generator continues in place — ``sim._executed`` is bumped for the
        elided event so counters stay bit-identical to the scheduled form.
        """
        if self._finished:
            return
        while True:
            try:
                if exception is not None:
                    effect = self._throw(exception)
                else:
                    effect = self._send(value)
            except StopIteration as stop:
                self._finished = True
                self.done.succeed(getattr(stop, "value", None))
                return
            except Exception as exc:  # surface the failure to joiners
                self._finished = True
                self.sim.failures.append((self.name, exc))
                self.done.fail(ProcessFailed(self.name, exc))
                return
            # Tag dispatch for the hot effects: every built-in effect
            # carries a small-int ``_tag`` class attribute, so the dominant
            # yields cost one attribute load plus int compares — no
            # isinstance chain, no method call.  Exotic effects (tag 0)
            # fall back to effect.apply(); a bare Process yield has no tag
            # at all and is wrapped as Join.
            try:
                tag = effect._tag
            except AttributeError:
                if isinstance(effect, Process):
                    Join(effect).apply(self.sim, self)
                else:
                    effect.apply(self.sim, self)
                return
            if tag == 1:  # Timeout — one per charged cost, the hottest yield
                lane = self._lane
                if lane is None:
                    self.sim.schedule(effect.delay, self.resume, None)
                    return
                # inline of Simulator.schedule(delay, resume, None): same
                # seq accounting, same lane/heap split, minus the call
                # overhead
                sim = self.sim
                delay = effect.delay
                if delay <= 0:
                    if delay < 0:
                        raise SimulationError(
                            "cannot schedule in the past (delay=%r)" % (delay,)
                        )
                    sim._seq = seq = sim._seq + 1
                    lane.append((seq, self.resume, _NONE_ARGS))
                else:
                    sim._seq = seq = sim._seq + 1
                    heap = sim._heap
                    heappush(heap, (sim.now + delay, seq, self.resume, _NONE_ARGS))
                    if len(heap) > sim._peak_heap:
                        sim._peak_heap = len(heap)
                return
            elif tag == 2:
                store = effect.store
                lane = self._lane
                if lane is not None and not lane:
                    items = store._items
                    if items and not store._getters and not store._putters:
                        sim = self.sim
                        heap = sim._heap
                        if sim.observer is None and (
                            not heap or heap[0][0] > sim.now
                        ):
                            # ready hand-off with nothing else runnable at
                            # this instant: elide the lane round-trip and
                            # continue the generator in place
                            sim._executed += 1
                            value = items.popleft()
                            exception = None
                            continue
                store.add_getter(self.resume)
                return
            elif tag == 3:
                effect.store.add_putter(effect.item, self.resume)
                return
            elif tag == 4:
                effect.signal.add_waiter(self.resume)
                return
            elif tag == 5:  # TimeoutAt — exact-instant wake of a fused sleep
                if self._lane is None:
                    effect.apply(self.sim, self)
                    return
                # inline of Simulator.schedule_abs(at, resume, None)
                sim = self.sim
                at = effect.at
                if at < sim.now:
                    effect.apply(sim, self)  # epsilon clamp / past-time error
                    return
                sim._seq = seq = sim._seq + 1
                heap = sim._heap
                heappush(heap, (at, seq, self.resume, _NONE_ARGS))
                if len(heap) > sim._peak_heap:
                    sim._peak_heap = len(heap)
                return
            else:
                effect.apply(self.sim, self)
                return

    def interrupt(self, exception=None):
        """Throw ``exception`` (default :class:`Interrupt`) into the body."""
        self.sim.schedule(0, self.resume, None, exception or Interrupt())


class Interrupt(Exception):
    """Default exception delivered by :meth:`Process.interrupt`."""
