"""Burst chains: batched execution of per-packet charge pipelines.

A datapath poll loop used to cost one full scheduler round-trip per packet:

    for packet in batch:
        yield charge(stage, packet.payload_len, burst)   # Timeout -> timer
        ...per-packet action...                          # at the resume

Every iteration paid a ``Timeout`` allocation, a generator ``send``, the
trampoline dispatch, and a heap/lane round-trip.  A :class:`ChargeChain`
replaces the whole loop with ONE yielded effect per drained batch: the
per-packet charge steps become plain slotted callbacks that the chain
threads through the engine itself, and the generator is resumed once, at
the end of the batch.

Bit-identity contract (golden traces, differential oracle):

* jitter is still drawn per stage, per packet, in exactly the order the
  per-packet loop drew it — packet *k+1*'s cost is drawn at packet *k*'s
  completion event, and packet 1's cost at the event that yielded the
  chain;
* every step is a real engine event: scheduled steps carry normal sequence
  numbers through the same lane/heap split as ``Simulator.schedule``, and
  *inline* steps bump ``now``/``_executed`` exactly as the run loop would
  have, so executed-event counts and timestamps are unchanged;
* the final step resumes the generator synchronously within the same
  event, matching the old loop falling through to its next ``yield``.

Inline execution — the actual batching win — fires only when a step is
*provably* the next event in the whole simulation: the zero-delay lane is
empty, every heap entry is strictly later than the step's completion time,
the step lands inside any active ``run(until=)`` deadline, and no engine
observer is installed.  In that situation the engine loop would pop
exactly this step next; executing it in place skips the push, the heap
sift, the pop, and the dispatch — one scheduler round-trip for the whole
batch in the common poll-loop case.  Whenever the condition fails (a
consumer was woken onto the lane, a timer is due first) the chain falls
back to a normally-scheduled step, so interleaving with the rest of the
simulation is preserved by construction.

When true cross-packet coalescing (a single timeout covering the whole
batch) is and is not legal is discussed in DESIGN.md §11 — the short
version: it is illegal whenever a consumer can observe (or draw rng at) a
per-packet completion time, which is why chains keep per-packet steps.
"""

from heapq import heappush


class ChargeChain:
    """One drained batch executed as a chain of per-packet charge steps.

    Subclasses define ``stages`` (tuple of stage-cost keys charged per
    packet, in order), ``_act(packet)`` (the per-packet action performed at
    the packet's charge-completion event) and optionally ``_result()`` (the
    value the generator is resumed with; defaults to None).

    A chain is yielded from a process body like any other effect; the
    trampoline dispatches it through :meth:`apply` (tag 0).
    """

    __slots__ = ("sim", "process", "batch", "index", "burst",
                 "_stage_cost", "_lane")
    _tag = 0

    #: stage-cost keys charged per packet, in order (subclass constant or
    #: instance attribute added to the subclass __slots__)
    stages = ()

    def __init__(self, dp, batch):
        self.batch = batch
        self.burst = len(batch)
        self.sim = sim = dp.sim
        self._stage_cost = dp.host.stage_cost
        self._lane = getattr(sim, "_lane", None)

    def apply(self, sim, process):
        """Start the chain: draw packet 1's cost at the yielding event —
        the same rng position the per-packet loop drew it — and schedule
        the first step."""
        self.process = process
        try:
            packet = self.batch[0]
            cost = 0.0
            size = packet.payload_len
            burst = self.burst
            stage_cost = self._stage_cost
            for key in self.stages:
                cost += stage_cost(key, size, burst=burst)
            self.index = 0
            self._push(cost)
        except Exception as exc:
            # the draw used to happen inside the generator frame; deliver
            # the failure there so it lands in sim.failures as before
            process.resume(None, exc)

    def _push(self, cost):
        """Schedule the next step — the same seq accounting and lane/heap
        split as ``Simulator.schedule(cost, self._step)``, minus the call
        (falls back to the real call on the legacy engine)."""
        lane = self._lane
        if lane is None:
            self.sim.schedule(cost, self._step)
            return
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        if cost <= 0:
            lane.append((seq, self._step, ()))
        else:
            heap = sim._heap
            heappush(heap, (sim.now + cost, seq, self._step, ()))
            if len(heap) > sim._peak_heap:
                sim._peak_heap = len(heap)

    def _step(self):
        """Run one charge-completion event, then as many subsequent steps
        as can be proven safe to execute inline."""
        sim = self.sim
        batch = self.batch
        i = self.index
        n = self.burst
        stages = self.stages
        stage_cost = self._stage_cost
        act = self._act
        lane = self._lane
        inline_ok = lane is not None and sim.observer is None
        heap = sim._heap if inline_ok else None
        until = sim._until if inline_ok else None
        # inline steps are counted in a local and flushed to _executed in
        # one store; the flush happens before anything outside this frame
        # (the resumed generator, a failure path) can observe sim.stats()
        stepped = 0
        try:
            while True:
                act(batch[i])
                i += 1
                if i == n:
                    # resume synchronously within this event: the old loop
                    # fell through to its next yield at the same instant
                    if stepped:
                        sim._executed += stepped
                        stepped = 0
                    self.process.resume(self._result())
                    return
                if stages:
                    size = batch[i].payload_len
                    cost = 0.0
                    for key in stages:
                        cost += stage_cost(key, size, burst=n)
                else:
                    cost = 0.0
                if inline_ok and not lane:
                    t_next = sim.now + cost
                    if (not heap or heap[0][0] > t_next) and (
                        until is None or t_next <= until
                    ):
                        # Provably the next event: the engine loop would
                        # pop exactly this step, set now, and call it —
                        # do that here, skipping push/sift/pop/dispatch.
                        sim.now = t_next
                        stepped += 1
                        continue
                self.index = i
                self._push(cost)
                return
        except Exception as exc:
            # per-packet actions ran inside the generator frame before the
            # overhaul; route failures through the process so they surface
            # in sim.failures exactly as they used to
            if stepped:
                sim._executed += stepped
                stepped = 0
            self.process.resume(None, exc)
        finally:
            if stepped:
                sim._executed += stepped

    def _result(self):
        return None


class TxChain(ChargeChain):
    """Generic transmit burst: charge ``stages``, stamp ``done_key``, hand
    the packet to the datapath's NIC."""

    __slots__ = ("dp", "done_key", "stages")

    def __init__(self, dp, batch, stages, done_key):
        ChargeChain.__init__(self, dp, batch)
        self.dp = dp
        self.stages = stages
        self.done_key = done_key

    def _act(self, packet):
        trace = packet.trace
        if trace is not None:
            trace[self.done_key] = self.sim.now
        self.dp.transmit(packet)


class RdmaTxChain(TxChain):
    """RDMA SEND posting: a TxChain that also counts posted work requests."""

    __slots__ = ("posted_sends",)

    def __init__(self, dp, batch, posted_sends):
        TxChain.__init__(self, dp, batch, ("rdma_post",), "rdma_post_done")
        self.posted_sends = posted_sends

    def _act(self, packet):
        TxChain._act(self, packet)
        self.posted_sends.value += 1


class KernelRxChain(ChargeChain):
    """Kernel softirq processing: NIC default ring -> per-socket buffers."""

    __slots__ = ("dp", "sockets")

    stages = ("udp_rx",)

    def __init__(self, dp, batch):
        ChargeChain.__init__(self, dp, batch)
        self.dp = dp
        self.sockets = dp._sockets

    def _act(self, packet):
        trace = packet.trace
        if trace is not None:
            trace["kernel_rx_done"] = self.sim.now
        dp = self.dp
        socket = self.sockets.get(packet.dst_port)
        if socket is None:
            dp.no_socket_drops.value += 1
        elif socket.buffer.try_put(packet):
            dp.rx_packets.value += 1
        else:
            dp.socket_overflow_drops.value += 1


class DpdkRxChain(ChargeChain):
    """DPDK PMD receive: mempool staging plus userspace stack processing.

    Resumes the generator with the list of packets that obtained an mbuf
    (mempool exhaustion drops at the driver, like real rx-descriptor
    starvation).
    """

    __slots__ = ("dp", "delivered")

    stages = ("dpdk_rx", "ustack_rx")

    def __init__(self, dp, batch):
        ChargeChain.__init__(self, dp, batch)
        self.dp = dp
        self.delivered = []

    def _act(self, packet):
        dp = self.dp
        if not dp._stage_into_mempool(packet):
            return
        trace = packet.trace
        if trace is not None:
            trace["dpdk_rx_done"] = self.sim.now
        dp.rx_packets.value += 1
        self.delivered.append(packet)

    def _result(self):
        return self.delivered


class XdpRxChain(ChargeChain):
    """AF_XDP receive: UMEM frame to userspace bytes."""

    __slots__ = ("dp",)

    stages = ("xdp_rx", "ustack_rx")

    def __init__(self, dp, batch):
        ChargeChain.__init__(self, dp, batch)
        self.dp = dp

    def _act(self, packet):
        payload = packet.payload
        if type(payload) is memoryview:
            packet.payload = bytes(payload)
        trace = packet.trace
        if trace is not None:
            trace["xdp_rx_done"] = self.sim.now
        self.dp.rx_packets.value += 1

    def _result(self):
        return self.batch


class RdmaRxChain(ChargeChain):
    """RDMA completion-queue poll: count completions per received message."""

    __slots__ = ("dp", "completions")

    stages = ("rdma_poll_cq",)

    def __init__(self, dp, batch, completions):
        ChargeChain.__init__(self, dp, batch)
        self.dp = dp
        self.completions = completions

    def _act(self, packet):
        payload = packet.payload
        if type(payload) is memoryview:
            packet.payload = bytes(payload)
        trace = packet.trace
        if trace is not None:
            trace["rdma_rx_done"] = self.sim.now
        self.dp.rx_packets.value += 1
        self.completions.value += 1

    def _result(self):
        return self.batch
