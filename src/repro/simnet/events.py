"""One-shot signals for process synchronization."""


class Signal:
    """A one-shot event that processes can wait on.

    A signal starts pending, fires exactly once via :meth:`succeed` (or
    :meth:`fail`), and delivers its value to every past and future waiter.
    """

    __slots__ = ("sim", "fired", "value", "exception", "_waiters")

    def __init__(self, sim):
        self.sim = sim
        self.fired = False
        self.value = None
        self.exception = None
        self._waiters = []

    def succeed(self, value=None):
        """Fire the signal, waking all waiters with ``value``."""
        if self.fired:
            raise RuntimeError("signal already fired")
        self.fired = True
        self.value = value
        self._drain()

    def fail(self, exception):
        """Fire the signal exceptionally; waiters receive ``exception``."""
        if self.fired:
            raise RuntimeError("signal already fired")
        self.fired = True
        self.exception = exception
        self._drain()

    def add_waiter(self, callback):
        """Register ``callback(value, exception)``, called when fired.

        If the signal has already fired, the callback is scheduled
        immediately (still asynchronously, preserving run-to-completion
        semantics of the calling process).
        """
        if self.fired:
            sim = self.sim
            lane = getattr(sim, "_lane", None)
            if lane is None:
                sim.schedule(0, callback, self.value, self.exception)
            else:
                sim._seq = seq = sim._seq + 1
                lane.append((seq, callback, (self.value, self.exception)))
        else:
            self._waiters.append(callback)

    def _drain(self):
        waiters, self._waiters = self._waiters, []
        if not waiters:
            return
        sim = self.sim
        value = self.value
        exception = self.exception
        # Wake-ups are zero-delay: append straight to the fast engine's
        # lane (same sequence counter, so ordering matches schedule(0,...))
        lane = getattr(sim, "_lane", None)
        if lane is None:
            for callback in waiters:
                sim.schedule(0, callback, value, exception)
            return
        seq = sim._seq
        args = (value, exception)
        for callback in waiters:
            seq += 1
            lane.append((seq, callback, args))
        sim._seq = seq
