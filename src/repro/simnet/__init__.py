"""Discrete-event simulation (DES) kernel used as the substrate of the repo.

The paper evaluates INSANE on physical 100 Gbps testbeds; this package
provides the from-scratch simulation kernel on which all hardware, datapath,
and middleware models in :mod:`repro` run.  It is deliberately small and
dependency-free: a time-ordered event heap (:class:`Simulator`), cooperative
generator-based processes (:class:`Process`), and a handful of synchronization
primitives (:class:`Signal`, :class:`Store`, :class:`Resource`).

Time is measured in nanoseconds throughout the repository.
"""

from repro.simnet.errors import (
    DegenerateWindowError,
    SimulationError,
    StoreFullError,
)
from repro.simnet.events import Signal
from repro.simnet.engine import PeriodicHandle, Simulator
from repro.simnet.process import (
    AnyOf, Get, Join, Process, Put, Timeout, TimeoutAt, Wait,
)
from repro.simnet.resources import Resource, Store
from repro.simnet.monitor import Counter, RateMeter, Tally
from repro.simnet.burst import ChargeChain

__all__ = [
    "AnyOf",
    "ChargeChain",
    "Counter",
    "DegenerateWindowError",
    "Get",
    "Join",
    "PeriodicHandle",
    "Process",
    "Put",
    "RateMeter",
    "Resource",
    "Signal",
    "SimulationError",
    "Simulator",
    "Store",
    "StoreFullError",
    "Tally",
    "Timeout",
    "TimeoutAt",
    "Wait",
]
