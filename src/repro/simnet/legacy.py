"""The pre-overhaul event loop, kept as a measurable reference.

This module preserves the original object-per-event :class:`LegacySimulator`
so that the wall-clock performance harness (:mod:`repro.bench.perfbench`)
and the golden-trace determinism tests can run the *same* workloads on both
engines and compare:

* events/sec and wall seconds — the speedup recorded in
  ``BENCH_wallclock.json`` is measured, not asserted;
* simulated results — the fast engine must produce bit-identical
  ``(now, executed, failures)`` and statistics for identical seeds, which
  is only provable against an independent implementation.

The API surface matches :class:`repro.simnet.Simulator` (including the
``schedule_cancellable`` / ``stats`` extensions) so the two are drop-in
interchangeable via ``Testbed(..., sim=...)``.  Do not use this engine for
new code; it exists to be raced against and to notarize traces.

Two baseline configurations exist:

* ``LegacySimulator()`` alone swaps only the event loop; the application
  layers run their current (optimized) code, so results are bit-identical
  to the fast engine — this is the golden-trace configuration.
* ``sim.legacy_stack = True`` (set before building the testbed)
  additionally reverts the layers that were overhauled together with the
  engine: :class:`LegacyProcess` trampolines, per-stage datapath charges,
  and unconditional polling passes.  This reproduces the *full* pre-change
  stack and is what the recorded speedup in ``BENCH_wallclock.json`` is
  measured against.  Its event stream differs (more events, different rng
  interleaving), so results are compared within tolerance, not
  bit-for-bit.
"""

import heapq
import random

from repro.simnet.errors import ProcessFailed, SimulationError
from repro.simnet.events import Signal
from repro.simnet.process import Interrupt, Join, Process


class LegacyEventHandle:
    """A cancellable reference to a scheduled callback (one per event)."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from running.  Safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other):
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class LegacySimulator:
    """The original deterministic DES loop: a heap of EventHandle objects.

    Every scheduled event allocates an :class:`LegacyEventHandle`, and every
    heap sift runs the Python-level ``__lt__`` above — the costs the
    overhauled engine removes.
    """

    #: see :class:`repro.simnet.Simulator.legacy_stack`; the perf harness
    #: sets this True on a LegacySimulator to measure the full
    #: pre-overhaul stack rather than just the event loop.
    legacy_stack = False

    def __init__(self, seed=0):
        self._now = 0
        self._heap = []
        self._seq = 0
        self._executed = 0
        self.rng = random.Random(seed)
        #: (process_name, exception) for every process that died with an
        #: unhandled exception — checked by tests so failures cannot pass
        #: silently.
        self.failures = []

    @property
    def now(self):
        """Current virtual time in nanoseconds."""
        return self._now

    def schedule(self, delay, fn, *args):
        """Run ``fn(*args)`` after ``delay`` ns of virtual time."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay=%r)" % (delay,))
        self._seq += 1
        handle = LegacyEventHandle(self._now + delay, self._seq, fn, args)
        heapq.heappush(self._heap, handle)
        return handle

    # The legacy engine makes no fast/cancellable distinction: everything is
    # cancellable, so the new-API names alias the plain scheduling calls.
    schedule_cancellable = schedule

    def schedule_at(self, time, fn, *args):
        """Run ``fn(*args)`` at absolute virtual time ``time``."""
        delay = time - self._now
        if -1e-6 < delay < 0:
            delay = 0
        return self.schedule(delay, fn, *args)

    schedule_cancellable_at = schedule_at

    def process(self, generator, name=None):
        """Start a cooperative process; see :mod:`repro.simnet.process`."""
        if self.legacy_stack:
            return LegacyProcess(self, generator, name=name)
        from repro.simnet.process import Process

        return Process(self, generator, name=name)

    def run(self, until=None):
        """Execute events until the heap drains or ``until`` ns is reached.

        Returns the number of events executed.
        """
        executed = 0
        heap = self._heap
        while heap:
            handle = heap[0]
            if handle.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and handle.time > until:
                self._now = until
                self._executed += executed
                return executed
            heapq.heappop(heap)
            self._now = handle.time
            handle.fn(*handle.args)
            executed += 1
        if until is not None and until > self._now:
            self._now = until
        self._executed += executed
        return executed

    def step(self):
        """Execute exactly one pending event; return False if none remain."""
        heap = self._heap
        while heap:
            handle = heapq.heappop(heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            handle.fn(*handle.args)
            self._executed += 1
            return True
        return False

    def peek(self):
        """Time of the next pending event, or ``None`` when idle."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def stats(self):
        """The same counters as :meth:`repro.simnet.Simulator.stats`.

        The legacy engine has no zero-delay lane and never purges, so those
        entries are structurally zero.
        """
        return {
            "engine": "legacy",
            "events_executed": self._executed,
            "heap_size": len(self._heap),
            "lane_size": 0,
            "peak_heap": 0,
            "cancelled_pending": 0,
            "cancelled_purged": 0,
        }


class LegacyProcess:
    """The pre-overhaul process trampoline, preserved for the baseline.

    Compared to :class:`repro.simnet.process.Process` it re-allocates the
    ``resume`` bound method on every scheduling, calls ``generator.send``
    through attribute lookups, and dispatches every effect through its
    ``apply`` method — the per-resumption costs the overhaul removed.
    Interoperates with the same effect classes and stores, so any workload
    runs unmodified on either trampoline.
    """

    def __init__(self, sim, generator, name=None):
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = Signal(sim)
        self._finished = False
        sim.schedule(0, self.resume, None, None)

    @property
    def finished(self):
        return self._finished

    def resume(self, value, exception=None):
        """Advance the generator with ``value`` (or throw ``exception``)."""
        if self._finished:
            return
        try:
            if exception is not None:
                effect = self.generator.throw(exception)
            else:
                effect = self.generator.send(value)
        except StopIteration as stop:
            self._finished = True
            self.done.succeed(getattr(stop, "value", None))
            return
        except Exception as exc:  # surface the failure to joiners
            self._finished = True
            self.sim.failures.append((self.name, exc))
            self.done.fail(ProcessFailed(self.name, exc))
            return
        if isinstance(effect, (Process, LegacyProcess)):
            effect = Join(effect)
        effect.apply(self.sim, self)

    def interrupt(self, exception=None):
        """Throw ``exception`` (default ``Interrupt``) into the body."""
        self.sim.schedule(0, self.resume, None, exception or Interrupt())
