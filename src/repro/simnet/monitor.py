"""Measurement primitives: counters, tallies, and rate meters.

Every benchmark series in the repository is produced by these classes, so
their statistics (mean, median, percentiles) are computed in exactly one
place.
"""

import math


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def increment(self, amount=1):
        self.value += amount

    def __repr__(self):
        return "Counter(%s=%d)" % (self.name, self.value)


class Tally:
    """Accumulates samples and reports summary statistics.

    Samples are kept so that medians and percentiles are exact; benchmark
    sample counts in this repository are small enough (10-50 k) that this is
    never a memory concern.
    """

    def __init__(self, name):
        self.name = name
        self.samples = []

    def record(self, value):
        self.samples.append(value)

    @property
    def count(self):
        return len(self.samples)

    @property
    def total(self):
        return sum(self.samples)

    @property
    def mean(self):
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self):
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self):
        return max(self.samples) if self.samples else 0.0

    @property
    def stddev(self):
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((s - mean) ** 2 for s in self.samples) / (n - 1))

    def percentile(self, p):
        """Exact percentile by linear interpolation (0 <= p <= 100)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high or ordered[low] == ordered[high]:
            return ordered[low]
        frac = rank - low
        value = ordered[low] * (1 - frac) + ordered[high] * frac
        # guard against float rounding pushing past the sample bounds
        return min(max(value, ordered[0]), ordered[-1])

    @property
    def median(self):
        return self.percentile(50)

    def summary(self):
        """A dict of the headline statistics, handy for table rows."""
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p99": self.percentile(99),
            "min": self.minimum,
            "max": self.maximum,
            "stddev": self.stddev,
        }


class RateMeter:
    """Measures goodput: bytes accumulated over a virtual-time window."""

    def __init__(self, name):
        self.name = name
        self.bytes = 0
        self.messages = 0
        self.first_ns = None
        self.last_ns = None

    def record(self, now_ns, nbytes):
        if self.first_ns is None:
            self.first_ns = now_ns
        self.last_ns = now_ns
        self.bytes += nbytes
        self.messages += 1

    @property
    def elapsed_ns(self):
        if self.first_ns is None or self.last_ns is None:
            return 0
        return self.last_ns - self.first_ns

    def gbps(self):
        """Goodput in gigabits per second over the observed window."""
        elapsed = self.elapsed_ns
        if elapsed <= 0:
            return 0.0
        return (self.bytes * 8.0) / elapsed  # bits per ns == Gbps

    def mpps(self):
        """Millions of messages per second over the observed window."""
        elapsed = self.elapsed_ns
        if elapsed <= 0:
            return 0.0
        return self.messages * 1000.0 / elapsed
