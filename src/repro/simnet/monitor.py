"""Measurement primitives: counters, tallies, and rate meters.

Every benchmark series in the repository is produced by these classes, so
their statistics (mean, median, percentiles) are computed in exactly one
place.
"""

import math

from repro.simnet.errors import DegenerateWindowError


class Counter:
    """A named monotonically increasing counter.

    Hot-path idiom: bump with ``counter.value += 1`` directly — it is the
    documented fast form and the one used everywhere outside the frozen
    ``legacy_stack`` baseline paths (an attribute store is roughly half
    the cost of a bound-method call).  :meth:`increment` remains as a
    thin alias for cold paths and for callers that pass an ``amount``.
    """

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def increment(self, amount=1):
        self.value += amount

    def __repr__(self):
        return "Counter(%s=%d)" % (self.name, self.value)


class Tally:
    """Accumulates samples and reports summary statistics.

    Samples are kept so that medians and percentiles are exact; benchmark
    sample counts in this repository are small enough (10-50 k) that this is
    never a memory concern.
    """

    def __init__(self, name):
        self.name = name
        self.samples = []
        self._sorted = None

    def record(self, value):
        self.samples.append(value)
        self._sorted = None

    def _ordered(self):
        """The sorted view, cached between records.

        ``summary()`` asks for several percentiles per call and report
        generation walks many tallies, so re-sorting the full sample list
        on every ``percentile`` call made reporting quadratic-ish.
        """
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self.samples)
        return ordered

    @property
    def count(self):
        return len(self.samples)

    @property
    def total(self):
        return sum(self.samples)

    @property
    def mean(self):
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self):
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self):
        return max(self.samples) if self.samples else 0.0

    @property
    def stddev(self):
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((s - mean) ** 2 for s in self.samples) / (n - 1))

    def percentile(self, p):
        """Exact percentile by linear interpolation (0 <= p <= 100)."""
        if not self.samples:
            return 0.0
        ordered = self._ordered()
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high or ordered[low] == ordered[high]:
            return ordered[low]
        frac = rank - low
        value = ordered[low] * (1 - frac) + ordered[high] * frac
        # guard against float rounding pushing past the sample bounds
        return min(max(value, ordered[0]), ordered[-1])

    @property
    def median(self):
        return self.percentile(50)

    def summary(self):
        """A dict of the headline statistics, handy for table rows."""
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p99": self.percentile(99),
            "min": self.minimum,
            "max": self.maximum,
            "stddev": self.stddev,
        }


class RateMeter:
    """Measures goodput: bytes accumulated over a virtual-time window.

    The window runs from the *start* of the first recorded sample to the
    completion of the last one.  Callers that know the first sample's own
    serialization window pass it as ``duration_ns`` so a single-message
    window still has width; without it, a single-sample window is
    *degenerate* (``first_ns == last_ns``) and the rate queries raise
    :class:`DegenerateWindowError` rather than silently reporting a
    goodput of ``0.0`` for short benchmark windows.
    """

    def __init__(self, name):
        self.name = name
        self.bytes = 0
        self.messages = 0
        self.first_ns = None
        self.last_ns = None

    def record(self, now_ns, nbytes, duration_ns=None):
        if self.first_ns is None:
            # open the window at the start of the first sample's
            # serialization, not at its completion stamp
            if duration_ns is not None and duration_ns > 0:
                self.first_ns = now_ns - duration_ns
            else:
                self.first_ns = now_ns
        self.last_ns = now_ns
        self.bytes += nbytes
        self.messages += 1

    @property
    def elapsed_ns(self):
        if self.first_ns is None or self.last_ns is None:
            return 0
        return self.last_ns - self.first_ns

    def _window(self):
        elapsed = self.elapsed_ns
        if elapsed <= 0:
            raise DegenerateWindowError(
                "rate meter %r observed %d message(s) over a zero-width "
                "window; record the first sample's serialization window "
                "via record(..., duration_ns=...)" % (self.name, self.messages)
            )
        return elapsed

    def gbps(self):
        """Goodput in gigabits per second over the observed window."""
        if not self.messages:
            return 0.0
        return (self.bytes * 8.0) / self._window()  # bits per ns == Gbps

    def mpps(self):
        """Millions of messages per second over the observed window."""
        if not self.messages:
            return 0.0
        return self.messages * 1000.0 / self._window()
