"""Frame codecs for LUNAR Streaming.

The paper's prototype streams raw RGB frames and leaves compression "as
future development" (§7.2).  This module adds that layer: pluggable codecs
applied by the streaming server before fragmentation and undone by the
client after reassembly.  The codecs are real (byte-exact round trips,
property-tested); their CPU cost is charged per byte through the ``codec``
stage so the FPS benefit of shrinking frames is weighed against encode
time, as it would be on real hardware.
"""


class Codec:
    """Interface: byte-exact ``decode(encode(x)) == x``."""

    name = "codec"

    def encode(self, data):
        raise NotImplementedError

    def decode(self, data):
        raise NotImplementedError


class IdentityCodec(Codec):
    """No compression (the paper's raw-RGB behaviour)."""

    name = "identity"

    def encode(self, data):
        return bytes(data)

    def decode(self, data):
        return bytes(data)


class RleCodec(Codec):
    """Escape-based run-length encoding.

    Well suited to the flat regions of machine-vision frames (backgrounds,
    conveyor belts).  Worst-case expansion on incompressible input is
    bounded: a literal byte equal to the escape costs two bytes.

    Format: ``ESC count byte`` encodes ``count`` (3..255) repeats;
    ``ESC 0x00 ESC`` encodes a literal escape byte; anything else is a
    literal.
    """

    name = "rle"
    ESCAPE = 0xAB

    def encode(self, data):
        data = bytes(data)
        out = bytearray()
        index = 0
        length = len(data)
        while index < length:
            byte = data[index]
            run = 1
            while index + run < length and run < 255 and data[index + run] == byte:
                run += 1
            if run >= 3:
                out.extend((self.ESCAPE, run, byte))
                index += run
            else:
                for _ in range(run):
                    if byte == self.ESCAPE:
                        out.extend((self.ESCAPE, 0x00, self.ESCAPE))
                    else:
                        out.append(byte)
                index += run
        return bytes(out)

    def decode(self, data):
        data = bytes(data)
        out = bytearray()
        index = 0
        length = len(data)
        while index < length:
            byte = data[index]
            if byte != self.ESCAPE:
                out.append(byte)
                index += 1
                continue
            if index + 2 >= length and not (index + 2 < length):
                if index + 2 >= length:
                    raise ValueError("truncated RLE escape sequence")
            count = data[index + 1]
            if count == 0x00:
                if data[index + 2] != self.ESCAPE:
                    raise ValueError("malformed RLE literal escape")
                out.append(self.ESCAPE)
            elif count >= 3:
                out.extend(bytes([data[index + 2]]) * count)
            else:
                raise ValueError("malformed RLE run length %d" % count)
            index += 3
        return bytes(out)


class DeltaCodec(Codec):
    """Byte-wise delta filter composed with RLE.

    Smooth gradients (common in images) become long runs of small deltas,
    which the inner RLE then collapses.
    """

    name = "delta-rle"

    def __init__(self):
        self._rle = RleCodec()

    def encode(self, data):
        data = bytes(data)
        if not data:
            return b""
        deltas = bytearray(len(data))
        deltas[0] = data[0]
        for index in range(1, len(data)):
            deltas[index] = (data[index] - data[index - 1]) & 0xFF
        return self._rle.encode(bytes(deltas))

    def decode(self, data):
        deltas = self._rle.decode(data)
        if not deltas:
            return b""
        out = bytearray(len(deltas))
        out[0] = deltas[0]
        for index in range(1, len(deltas)):
            out[index] = (out[index - 1] + deltas[index]) & 0xFF
        return bytes(out)


CODECS = {codec.name: codec for codec in (IdentityCodec(), RleCodec(), DeltaCodec())}
