"""LUNAR Streaming: a client-server frame-streaming framework (§7.2).

The server exposes the paper's interface — ``lnr_s_open_server``,
``lnr_s_loop`` with application-provided ``get_frame``/``wait_next`` — and
streams frames by fragmenting them into jumbo-frame-sized INSANE buffers.
The client connects (``lnr_s_connect``), reassembles fragments, and hands
complete frames to the application.

Frames may be real ``bytes`` (integrity verified end to end in tests) or
synthetic sizes (``int``), which exercise the identical code path without
materializing multi-megabyte payloads — used by the Fig. 11 benchmarks.
"""

import struct

from repro.core import QosPolicy, Session
from repro.core.runtime import INSANE_HEADER_BYTES
from repro.netstack.fragment import FRAGMENT_HEADER, FRAGMENT_HEADER_LEN
from repro.simnet import Counter, Timeout

#: control channel (connection requests) and data channel ids
CONTROL_CHANNEL = 1
DATA_CHANNEL = 2


class LunarStreamServer:
    """``lnr_s_open_server``: streams frames to connected clients.

    An optional ``codec`` (see :mod:`repro.apps.codec`) compresses frames
    before fragmentation — the extension the paper leaves as future work
    (§7.2).  Server and client must agree on the codec.
    """

    def __init__(self, runtime, mode="fast", stream_name="lunar-stream", codec=None):
        self.runtime = runtime
        self.sim = runtime.sim
        self.host = runtime.host
        self.codec = codec
        policy = QosPolicy.fast() if mode == "fast" else QosPolicy.slow()
        self.session = Session(runtime, "lnr-server")
        self.stream = self.session.create_stream(policy, name=stream_name)
        self.control_sink = self.session.create_sink(self.stream, CONTROL_CHANNEL)
        self.data_source = self.session.create_source(self.stream, DATA_CHANNEL)
        max_payload = runtime.frame_policy.max_payload - INSANE_HEADER_BYTES
        self.max_fragment = max_payload - FRAGMENT_HEADER_LEN
        self.frames_sent = Counter("lnr.server.frames")
        #: send-start virtual time of each frame, index == frame id — used
        #: by the Fig. 11b end-to-end latency measurement
        self.frame_starts = []
        self._next_frame_id = 0

    def wait_for_client(self):
        """Block until a client sends a connection request (generator)."""
        delivery = yield from self.session.consume_data(self.control_sink)
        self.session.release_buffer(self.control_sink, delivery)
        return delivery.source_ip

    def loop(self, get_frame, wait_next, frames):
        """``lnr_s_loop``: request, fragment+send, wait, repeat (generator)."""
        for _ in range(frames):
            frame = get_frame()
            if frame is None:
                break
            yield from self.send_frame(frame)
            yield from wait_next()

    def send_frame(self, frame):
        """Fragment one frame into INSANE buffers and emit them (generator).

        ``frame`` is ``bytes`` (payload carried and verified) or an ``int``
        size (synthetic benchmark mode).
        """
        synthetic = isinstance(frame, int)
        if not synthetic and self.codec is not None:
            # encode cost is charged on the uncompressed size
            yield Timeout(self.host.stage_cost("codec", len(frame)))
            frame = self.codec.encode(frame)
        frame_len = frame if synthetic else len(frame)
        frame_id = self._next_frame_id
        self._next_frame_id += 1
        self.frame_starts.append(self.sim.now)
        count = max(1, -(-frame_len // self.max_fragment))
        view = None if synthetic else memoryview(frame)
        for index in range(count):
            start = index * self.max_fragment
            data_len = min(self.max_fragment, frame_len - start)
            total = FRAGMENT_HEADER_LEN + data_len
            buffer = yield from self.session.get_buffer_wait(self.data_source, total)
            header = FRAGMENT_HEADER.pack(frame_id, index, count, frame_len)
            if synthetic:
                # only the fragment header crosses as real bytes; the bulk
                # is declared via the emit length (identical code path,
                # no multi-megabyte materialization)
                buffer.write(header)
            else:
                buffer.write(header + bytes(view[start : start + data_len]))
            # fragmentation copies payload into the slot: app-side cost
            yield Timeout(self.host.stage_cost("frag_copy", data_len))
            yield from self.session.emit_data(self.data_source, buffer, length=total)
        self.frames_sent.value += 1

    def close(self):
        self.session.close()


class LunarStreamClient:
    """``lnr_s_connect``: receives and reassembles the frame stream."""

    def __init__(self, runtime, mode="fast", stream_name="lunar-stream",
                 synthetic=False, codec=None):
        self.runtime = runtime
        self.sim = runtime.sim
        self.host = runtime.host
        self.synthetic = synthetic
        self.codec = codec
        policy = QosPolicy.fast() if mode == "fast" else QosPolicy.slow()
        self.session = Session(runtime, "lnr-client")
        self.stream = self.session.create_stream(policy, name=stream_name)
        self.control_source = self.session.create_source(self.stream, CONTROL_CHANNEL)
        self.data_sink = self.session.create_sink(self.stream, DATA_CHANNEL)
        self.frames_received = Counter("lnr.client.frames")
        self._pending = {}

    def connect(self):
        """Send the connection request to the server (generator)."""
        buffer = yield from self.session.get_buffer_wait(self.control_source, 8)
        buffer.write(b"CONNECT!")
        yield from self.session.emit_data(self.control_source, buffer)

    def receive_frames(self, count, on_frame=None):
        """Receive ``count`` complete frames (generator).

        Returns a list of ``(frame_or_size, completion_ns)``; calls
        ``on_frame(frame_or_size)`` per completion when given.
        """
        frames = []
        while len(frames) < count:
            delivery = yield from self.session.consume_data(self.data_sink)
            frame = self._push_fragment(delivery)
            self.session.release_buffer(self.data_sink, delivery)
            if frame is not None:
                if self.codec is not None and not self.synthetic:
                    frame = self.codec.decode(frame)
                    # decode cost charged on the reconstructed size
                    yield Timeout(self.host.stage_cost("codec", len(frame)))
                self.frames_received.value += 1
                frames.append((frame, self.sim.now))
                if on_frame is not None:
                    on_frame(frame)
        return frames

    def _push_fragment(self, delivery):
        """Reassemble; returns the frame (bytes or size) when complete."""
        header = bytes(delivery.buffer.view[:FRAGMENT_HEADER_LEN])
        frame_id, index, count, frame_len = FRAGMENT_HEADER.unpack(header)
        synthetic = self.synthetic
        state = self._pending.get(frame_id)
        if state is None:
            state = _FrameAssembly(count, frame_len, synthetic)
            self._pending[frame_id] = state
        data_len = delivery.length - FRAGMENT_HEADER_LEN
        if synthetic:
            state.add(index, data_len)
        else:
            state.add(index, bytes(delivery.buffer.view[FRAGMENT_HEADER_LEN : delivery.length]))
        if state.complete:
            del self._pending[frame_id]
            return state.assemble()
        return None

    def close(self):
        self.session.close()


class _FrameAssembly:
    __slots__ = ("count", "frame_len", "synthetic", "parts", "received", "size_seen")

    def __init__(self, count, frame_len, synthetic):
        self.count = count
        self.frame_len = frame_len
        self.synthetic = synthetic
        self.parts = None if synthetic else [None] * count
        self.received = 0
        self.size_seen = 0

    def add(self, index, data):
        if self.synthetic:
            self.received += 1
            self.size_seen += data
        else:
            if self.parts[index] is None:
                self.received += 1
            self.parts[index] = data

    @property
    def complete(self):
        return self.received == self.count

    def assemble(self):
        if self.synthetic:
            if self.size_seen != self.frame_len:
                raise ValueError(
                    "synthetic frame size mismatch: %d != %d"
                    % (self.size_seen, self.frame_len)
                )
            return self.frame_len
        frame = b"".join(self.parts)
        if len(frame) != self.frame_len:
            raise ValueError("reassembled %d B, expected %d B" % (len(frame), self.frame_len))
        return frame
