"""LUNAR MoM: a decentralized publish/subscribe MoM over INSANE (§7.1).

The mapping onto INSANE is exactly the paper's: topic names hash to channel
ids; ``lunar_publish`` opens a source lazily on first publication, borrows a
buffer, lets the caller fill it, and emits; ``lunar_subscribe`` opens a sink
on the hashed channel.  INSANE forwards messages to every reachable runtime
with matching subscribers and delivers them locally over shared memory.
"""

from hashlib import sha256

from repro.core import QosPolicy, Session
from repro.simnet import Counter, Timeout


class TopicCollisionError(RuntimeError):
    """Two distinct topic names hashed to the same channel id."""


def topic_id(topic):
    """Hash a topic name to an INSANE channel id (stable across hosts).

    sha256-derived, truncated to 63 bits.  The original crc32 mapping
    lived in a 2^31 space where distinct topics collide with near
    certainty at ~10^5-10^6 topics (birthday bound ~2^15.5), silently
    cross-delivering between them; at 63 bits a million topics collide
    with probability ~5e-8.  Residual collisions are still detected and
    raised per participant (see :meth:`LunarMom._channel_for`).
    """
    return int.from_bytes(
        sha256(topic.encode("utf-8")).digest()[:8], "big"
    ) >> 1


class LunarMom:
    """One LUNAR MoM participant bound to the local INSANE runtime."""

    def __init__(self, runtime, mode="fast", stream_name="lunar", time_sensitive=False):
        if mode not in ("fast", "slow"):
            raise ValueError("mode must be 'fast' or 'slow'")
        self.runtime = runtime
        self.sim = runtime.sim
        self.host = runtime.host
        self.mode = mode
        policy = (
            QosPolicy.fast(time_sensitive=time_sensitive)
            if mode == "fast"
            else QosPolicy.slow(time_sensitive=time_sensitive)
        )
        self.session = Session(runtime, "lunar-%s" % runtime.host.name)
        self.stream = self.session.create_stream(policy, name=stream_name)
        self._sources = {}
        self._subscriptions = []
        self._channel_topics = {}  # channel id -> topic name (collision guard)
        self.published = Counter("lunar.published")
        self.delivered = Counter("lunar.delivered")

    # -- publish ----------------------------------------------------------------

    def publish(self, topic, data=None, size=None, fill=None):
        """``lunar_publish``: emit one message on ``topic`` (generator).

        Provide either ``data`` (bytes to copy into the buffer), or
        ``size`` plus an optional ``fill(buffer)`` callback that writes the
        payload — the paper's zero-copy publication style.
        """
        if data is None and size is None:
            raise ValueError("publish needs data bytes or an explicit size")
        length = len(data) if data is not None else size
        source = self._source_for(topic)
        buffer = yield from self.session.get_buffer_wait(source, length)
        if data is not None:
            buffer.write(data)
        elif fill is not None:
            fill(buffer)
        # topic hashing + MoM header: the ns-scale LUNAR layer cost
        yield Timeout(self.host.stage_cost("mom_layer", length))
        emit_id = yield from self.session.emit_data(source, buffer, length=length)
        self.published.value += 1
        return emit_id

    def _channel_for(self, topic):
        """``topic_id`` plus the detect-and-raise collision guard: a
        channel id claimed by a *different* topic name on this participant
        would silently cross-deliver — refuse loudly instead."""
        channel = topic_id(topic)
        claimed = self._channel_topics.get(channel)
        if claimed is None:
            self._channel_topics[channel] = topic
        elif claimed != topic:
            raise TopicCollisionError(
                "topic %r hashes to channel %d already claimed by %r — "
                "messages would cross-deliver between distinct topics"
                % (topic, channel, claimed)
            )
        return channel

    def _source_for(self, topic):
        channel = self._channel_for(topic)
        source = self._sources.get(channel)
        if source is None:
            source = self.session.create_source(self.stream, channel)
            self._sources[channel] = source
        return source

    # -- subscribe ----------------------------------------------------------------

    def subscribe(self, topic, callback):
        """``lunar_subscribe``: deliver every message on ``topic`` to
        ``callback(topic, payload_memoryview)``."""
        channel = self._channel_for(topic)
        sink = self.session.create_sink(self.stream, channel)
        self._subscriptions.append(sink)
        self.sim.process(
            self._subscriber_loop(sink, topic, callback),
            name="lunar.sub.%s" % topic,
        )
        return sink

    def _subscriber_loop(self, sink, topic, callback):
        while not sink.closed:
            delivery = yield from self.session.consume_data(sink)
            yield Timeout(self.host.stage_cost("mom_layer", delivery.length))
            self.delivered.value += 1
            callback(topic, delivery.payload())
            self.session.release_buffer(sink, delivery)

    def close(self):
        self.session.close()
