"""INSANE-based applications from the paper's §7.

* :mod:`repro.apps.lunar_mom` — LUNAR MoM, a decentralized
  publish/subscribe message-oriented middleware (135 LoC of C in the
  paper);
* :mod:`repro.apps.lunar_streaming` — LUNAR Streaming, a client-server
  frame streaming framework with application-level fragmentation.

Both are written exclusively against the public INSANE API
(:class:`repro.core.Session`), demonstrating how domain-specific
abstractions compose on top of the middleware.
"""

from repro.apps.lunar_mom import LunarMom, topic_id
from repro.apps.lunar_streaming import LunarStreamClient, LunarStreamServer

__all__ = ["LunarMom", "LunarStreamClient", "LunarStreamServer", "topic_id"]
