"""A reliable transport built ON TOP of the INSANE API.

INSANE deliberately ships no fault-tolerance semantics: "developers are
responsible to design mechanisms as part of their own custom logic"
(paper §5.2).  This module is that custom logic, written exactly the way
the paper intends — a sliding-window ARQ using one INSANE channel for data
and one for acknowledgements, with cumulative ACKs, retransmission
timeouts, duplicate suppression, and in-order delivery.

It doubles as a demonstration that the minimal Fig. 2 API is expressive
enough to host classic transport protocols (paper §5.1).
"""

import struct

from repro.core.errors import TransferError
from repro.simnet import Counter, Signal, Timeout, Wait

#: seq number, kind (0 = DATA, 1 = ACK), payload length
_HEADER = struct.Struct("!QBH")
HEADER_LEN = _HEADER.size

KIND_DATA = 0
KIND_ACK = 1


class ReliableSender:
    """Sliding-window ARQ sender over an INSANE source/sink pair."""

    def __init__(self, session, stream, channel, window=32, rto_ns=150_000,
                 backoff=2.0, max_rto_ns=None, max_retries=None):
        if window < 1:
            raise ValueError("window must be >= 1")
        if backoff < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        self.session = session
        self.sim = session.sim
        self.channel = channel
        self.window = window
        self.rto_ns = rto_ns
        #: exponential backoff: each timeout without ACK progress scales
        #: the RTO by this factor, capped at ``max_rto_ns``; any progress
        #: resets it — keeps a dead path from being hammered at line rate.
        self.backoff = backoff
        self.max_rto_ns = max_rto_ns if max_rto_ns is not None else rto_ns * 16
        #: consecutive no-progress timeouts before the sender gives up
        #: (``None`` = retry forever, the historical behaviour).
        self.max_retries = max_retries
        self.source = session.create_source(stream, channel)
        self.ack_sink = session.create_sink(stream, channel + 1, callback=self._on_ack)
        self.next_seq = 0
        self.base = 0                      # oldest unacknowledged sequence
        self._unacked = {}                 # seq -> payload bytes
        self._window_open = None           # Signal fired when space frees up
        self._timer = None
        self._current_rto_ns = rto_ns
        self._timeouts_in_a_row = 0
        self.retransmissions = Counter("arq.retransmissions")
        self.acked = Counter("arq.acked")
        self.closed = False
        #: True once max_retries was exhausted; send/drain then raise.
        self.failed = False

    # -- public API -------------------------------------------------------

    def send(self, data):
        """Send ``data`` reliably (generator; blocks while the window is
        full).  Returns the assigned sequence number."""
        if self.closed:
            raise TransferError("sender is closed")
        if self.failed:
            raise TransferError(
                "sender gave up after %d consecutive timeouts" % self._timeouts_in_a_row
            )
        while self.next_seq - self.base >= self.window:
            self._window_open = Signal(self.sim)
            yield Wait(self._window_open)
            if self.failed:
                raise TransferError(
                    "sender gave up after %d consecutive timeouts"
                    % self._timeouts_in_a_row
                )
        seq = self.next_seq
        self.next_seq += 1
        self._unacked[seq] = bytes(data)
        yield from self._transmit(seq)
        self._arm_timer()
        return seq

    @property
    def in_flight(self):
        return len(self._unacked)

    def drain(self):
        """Wait until every sent message has been acknowledged (generator).

        Raises :class:`TransferError` if the sender exhausts
        ``max_retries`` while data is still outstanding."""
        while self._unacked:
            if self.failed:
                raise TransferError(
                    "sender gave up with %d messages unacknowledged"
                    % len(self._unacked)
                )
            self._window_open = Signal(self.sim)
            yield Wait(self._window_open)

    def close(self):
        self.closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- internals -----------------------------------------------------------

    def _transmit(self, seq):
        payload = self._unacked[seq]
        buffer = yield from self.session.get_buffer_wait(
            self.source, HEADER_LEN + len(payload)
        )
        buffer.write(_HEADER.pack(seq, KIND_DATA, len(payload)) + payload)
        yield from self.session.emit_data(self.source, buffer)

    def _on_ack(self, delivery):
        """Cumulative ACK: everything below ``seq`` is received."""
        header = bytes(delivery.buffer.view[:HEADER_LEN])
        ack_seq, kind, _length = _HEADER.unpack(header)
        if kind != KIND_ACK or ack_seq <= self.base:
            return
        for seq in range(self.base, ack_seq):
            if seq in self._unacked:
                del self._unacked[seq]
                self.acked.value += 1
        self.base = ack_seq
        # ACK progress: reset the exponential backoff
        self._current_rto_ns = self.rto_ns
        self._timeouts_in_a_row = 0
        if self._window_open is not None and not self._window_open.fired:
            self._window_open.succeed()
            self._window_open = None
        self._arm_timer()

    def _arm_timer(self):
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._unacked and not self.closed and not self.failed:
            self._timer = self.sim.schedule_cancellable(
                self._current_rto_ns, self._on_timeout
            )

    def _on_timeout(self):
        self._timer = None
        if not self._unacked or self.closed:
            return
        self._timeouts_in_a_row += 1
        if self.max_retries is not None and self._timeouts_in_a_row > self.max_retries:
            # give up: wake blocked senders so they raise TransferError
            self.failed = True
            if self._window_open is not None and not self._window_open.fired:
                self._window_open.succeed()
                self._window_open = None
            return
        rto = self._current_rto_ns * self.backoff
        self._current_rto_ns = rto if rto < self.max_rto_ns else self.max_rto_ns
        self.sim.process(self._retransmit_window(), name="arq.rtx")

    def _retransmit_window(self):
        # go-back-N: resend everything outstanding, oldest first
        for seq in sorted(self._unacked):
            self.retransmissions.value += 1
            yield from self._transmit(seq)
        self._arm_timer()


class ReliableReceiver:
    """In-order, exactly-once delivery with cumulative ACKs."""

    def __init__(self, session, stream, channel, deliver, ack_every=1):
        self.session = session
        self.sim = session.sim
        self.deliver = deliver
        self.ack_source = session.create_source(stream, channel + 1)
        self.data_sink = session.create_sink(stream, channel, callback=self._on_data)
        self.expected = 0
        self._out_of_order = {}
        self._since_ack = 0
        self.ack_every = ack_every
        self.duplicates = Counter("arq.duplicates")
        self.delivered = Counter("arq.delivered")

    def _on_data(self, delivery):
        view = delivery.buffer.view[: delivery.length]
        seq, kind, length = _HEADER.unpack(bytes(view[:HEADER_LEN]))
        if kind != KIND_DATA:
            return
        payload = bytes(view[HEADER_LEN : HEADER_LEN + length])
        if seq < self.expected or seq in self._out_of_order:
            self.duplicates.value += 1
        elif seq == self.expected:
            self._deliver(payload)
            self.expected += 1
            while self.expected in self._out_of_order:
                self._deliver(self._out_of_order.pop(self.expected))
                self.expected += 1
        else:
            self._out_of_order[seq] = payload
        self._since_ack += 1
        if self._since_ack >= self.ack_every:
            self._since_ack = 0
            self.sim.process(self._send_ack(), name="arq.ack")

    def _deliver(self, payload):
        self.delivered.value += 1
        self.deliver(payload)

    def _send_ack(self):
        buffer = yield from self.session.get_buffer_wait(self.ack_source, HEADER_LEN)
        buffer.write(_HEADER.pack(self.expected, KIND_ACK, 0))
        yield from self.session.emit_data(self.ack_source, buffer)
