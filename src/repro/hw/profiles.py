"""Calibrated testbed profiles.

Every timing constant in the simulation lives here.  Each constant is a
*component cost* of a software or hardware pipeline stage, expressed as a
:class:`StageCost` with three terms::

    cost(burst, size) = fixed / burst + per_pkt + per_byte * size     [ns]

The ``fixed`` term is paid once per batch (syscall, poll-loop reaction,
burst-call overhead) and therefore amortizes under load; ``per_pkt`` and
``per_byte`` are paid for every packet.  This single model reproduces both
the latency experiments (burst == 1) and the throughput experiments (bursts
grow under load) of the paper.

Calibration targets (paper Fig. 7, 64 B RTT, local testbed / CloudLab):

=================  ==========  ===========
System             Local (µs)  Cloud (µs)
=================  ==========  ===========
Blocking UDP        27.20       ~38
Non-blocking UDP    12.58       19.10
Catnap              13.34       21.33
INSANE slow         13.66       23.27
Catnip               4.26        7.40
INSANE fast          4.95       10.43
Raw DPDK             3.44        6.55
=================  ==========  ===========

One-way compositions used for the local numbers (64 B, ns):

* hardware path = nic_tx_dma 250 + serialization ~10 + propagation 100
  + nic_rx_dma 250 = 610
* raw DPDK sw = [ustack_tx 220 + dpdk_tx 250] + [detect 139 + dpdk_rx 285
  + ustack_rx 220] = 1 114; one-way 1 724 -> RTT 3.45
* kernel UDP sw = udp_tx 2 472 + udp_rx 2 972 + detect 240 = 5 684;
  one-way 6 294 -> RTT 12.59; blocking replaces detect with wakeup 7 550
* INSANE adds per side: ipc 90 + sched/dispatch (slow 180, fast 188)
  + pool exchange (fast only, 100): slow +270/side, fast +378/side
* Catnap +190/side; Catnip +205/side over raw DPDK

Throughput anchors (local, Fig. 8/9b): INSANE fast 25.98 Gbps @1 KB single
sink and ~90 Gbps @8 KB; INSANE slow 4.69 Gbps @1 KB; raw DPDK approaches
NIC line rate at large payloads; Catnip capped by unbatched per-packet
transmit cost.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StageCost:
    """CPU cost of one pipeline stage (see module docstring)."""

    fixed: float = 0.0
    per_pkt: float = 0.0
    per_byte: float = 0.0

    def cost(self, size, burst=1):
        """Cost in ns to process one packet of ``size`` payload bytes when
        the stage handles ``burst`` packets in one activation."""
        if burst < 1:
            raise ValueError("burst must be >= 1")
        return self.fixed / burst + self.per_pkt + self.per_byte * size


@dataclass(frozen=True)
class TestbedProfile:
    """A complete description of one of the paper's testbeds."""

    name: str
    description: str
    # -- hardware ---------------------------------------------------------
    nic_bandwidth_gbps: float = 100.0
    nic_tx_dma_ns: float = 250.0          # DMA engine + PCIe posting, per frame
    nic_rx_dma_ns: float = 250.0
    nic_rx_ring_slots: int = 1024
    link_propagation_ns: float = 100.0    # per cable segment
    switch_forward_ns: float = 0.0        # store-and-forward + lookup, per traversal
    #: drop a frame that would wait longer than this in a switch output
    #: queue (deep-buffer default matching the historical hard-coded value)
    switch_port_queue_ns: float = 2_000_000.0
    has_switch: bool = False
    mtu: int = 1500
    jumbo_mtu: int = 9000
    cores: int = 18
    cpu_jitter: float = 0.015             # relative sigma on software stage costs
    # -- hardware availability (drives QoS mapping) -----------------------
    rdma_nic: bool = False                # paper: RDMA "not yet available in
                                          # most cloud settings"
    xdp_capable: bool = True
    dpdk_capable: bool = True
    # -- per-stage software costs -----------------------------------------
    stages: dict = field(default_factory=dict)
    # -- scalar constants --------------------------------------------------
    scalars: dict = field(default_factory=dict)

    def stage(self, key):
        try:
            return self.stages[key]
        except KeyError:
            raise KeyError("profile %r has no stage %r" % (self.name, key))

    def scalar(self, key):
        try:
            return self.scalars[key]
        except KeyError:
            raise KeyError("profile %r has no scalar %r" % (self.name, key))

    def replace(self, **kwargs):
        """A copy of this profile with fields overridden (for what-ifs)."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **kwargs)


def _local_stages():
    return {
        # ---- kernel UDP datapath --------------------------------------------
        # sender: syscall entry+exit, copy to skb, IP/UDP stack + qdisc.
        "udp_tx": StageCost(fixed=1550.0, per_pkt=900.0, per_byte=0.35),
        # receiver: IRQ+softirq, protocol processing, copy to user, recv path.
        "udp_rx": StageCost(fixed=1800.0, per_pkt=1150.0, per_byte=0.35),
        # ---- DPDK datapath ---------------------------------------------------
        "dpdk_tx": StageCost(fixed=180.0, per_pkt=70.0, per_byte=0.008),
        "dpdk_rx": StageCost(fixed=196.0, per_pkt=85.0, per_byte=0.06),
        # userspace network stack (the "packet processing engine")
        "ustack_tx": StageCost(fixed=180.0, per_pkt=40.0),
        "ustack_rx": StageCost(fixed=180.0, per_pkt=40.0),
        # ---- AF_XDP datapath (between kernel UDP and DPDK) -------------------
        "xdp_tx": StageCost(fixed=700.0, per_pkt=260.0, per_byte=0.02),
        "xdp_rx": StageCost(fixed=850.0, per_pkt=300.0, per_byte=0.06),
        # ---- RDMA two-sided datapath (offloaded; tiny host cost) -------------
        "rdma_post": StageCost(fixed=120.0, per_pkt=60.0),
        "rdma_poll_cq": StageCost(fixed=150.0, per_pkt=70.0),
        # ---- INSANE runtime ---------------------------------------------------
        # client library <-> runtime token ring (lock-free SPSC model)
        "insane_ipc": StageCost(fixed=60.0, per_pkt=30.0),
        # runtime scheduler pass at the sender (dequeue, QoS class, schedule)
        "insane_sched_slow": StageCost(per_pkt=180.0),
        "insane_sched_fast": StageCost(fixed=118.0, per_pkt=70.0),
        # runtime dispatch at the receiver (channel match, token fan-out)
        "insane_dispatch_slow": StageCost(per_pkt=180.0),
        "insane_dispatch_fast": StageCost(fixed=118.0, per_pkt=70.0),
        # mempool slot exchange with the DPDK mempool (fast mode only)
        "insane_pool_fast": StageCost(fixed=71.0, per_pkt=29.0),
        # ---- Demikernel (library OS: in-process, no IPC hop) ------------------
        "catnap_lib": StageCost(fixed=40.0, per_pkt=150.0),
        # Catnip is latency-optimized and "sends one packet per time on the
        # network": every push is synchronous with the wire (see
        # repro.baselines.demikernel), so only the library cost lives here.
        "catnip_lib": StageCost(per_pkt=205.0),
        # ---- MoM baselines over kernel UDP ------------------------------------
        # RTPS CDR (de)serialization: fixed part amortizes under load.
        "dds_serialize": StageCost(fixed=220.0, per_pkt=80.0, per_byte=0.02),
        # blocking receiver event loop: pure wake-up latency, amortizes away.
        "dds_eventloop": StageCost(fixed=3250.0),
        "zmq_pipeline": StageCost(fixed=9200.0, per_pkt=4600.0, per_byte=0.01),
        # ---- sendfile streaming baseline ---------------------------------------
        # the full kernel send path minus the userspace copy (sendfile is
        # sender-side zero-copy); replaces udp_tx entirely on this path
        "sendfile_tx": StageCost(fixed=1550.0, per_pkt=950.0, per_byte=0.02),
        "sendfile_rx": StageCost(fixed=1800.0, per_pkt=1150.0, per_byte=0.35),
        # ---- application-side costs --------------------------------------------
        "app_touch": StageCost(per_byte=0.02),     # app reads/writes payload
        # fragmentation memcpy into pool slots (~10 GB/s incl. cache misses):
        # this paces the LUNAR streaming server (Fig. 11)
        "frag_copy": StageCost(fixed=120.0, per_byte=0.1),
        # frame codec work (RLE/delta ~ 2.5 GB/s per core), charged on the
        # uncompressed byte count at both encode and decode
        "codec": StageCost(fixed=200.0, per_byte=0.4),
        "mom_layer": StageCost(per_pkt=44.0),      # LUNAR MoM topic hashing etc.
    }


def _local_scalars():
    return {
        # blocking socket receive pays a scheduler wake-up (Fig. 7 gap
        # between blocking and non-blocking UDP: (27.20-12.58)/2 per way).
        "wakeup_ns": 7550.0,
        # average reaction time of a non-blocking poll loop (half a loop)
        "udp_poll_detect_ns": 240.0,
        "dpdk_poll_detect_ns": 139.0,
        "xdp_poll_detect_ns": 400.0,
        "rdma_poll_detect_ns": 120.0,
        # per-additional-sink token fan-out cost in the receiver runtime
        "insane_fanout_per_sink_ns": 5.5,
        # beyond this many attached sink rings the runtime's working set
        # spills L2 and every dispatch pays a penalty per extra ring
        # (reproduces the Fig. 8b cliff between 6 and 8 sinks).
        "insane_l2_ring_budget": 6,
        "insane_l2_penalty_ns": 85.0,
        # opportunistic batching: max packets drained per scheduler pass
        "insane_tx_burst": 32,
        "dpdk_rx_burst": 32,
        "udp_rx_burst": 32,
        # memory pool defaults
        "pool_slots": 1024,
        "pool_slot_bytes": 9216,
        "ipc_ring_slots": 256,
        "socket_buffer_slots": 4096,
    }


def _cloud_stages():
    """CloudLab: AMD EPYC 7452 @ 2.35 GHz.

    Kernel-path costs scale ~1.30x (slower clock); DPDK driver costs are
    I/O-dominated and barely scale; the INSANE runtime and Demikernel
    library layers scale hardest (cross-CCX IPC and cache misses on EPYC),
    matching the paper's Fig. 6 analysis.
    """
    local = _local_stages()

    def scaled(key, factor):
        stage = local[key]
        return StageCost(
            fixed=stage.fixed * factor,
            per_pkt=stage.per_pkt * factor,
            per_byte=stage.per_byte * factor,
        )

    stages = dict(local)
    for key in ("udp_tx", "udp_rx", "sendfile_tx", "sendfile_rx",
                "xdp_tx", "xdp_rx"):
        stages[key] = scaled(key, 1.30)
    # INSANE runtime ops: one-way overhead 540 -> 2 085 ns (slow),
    # 756 -> 1 940 ns (fast); see module docstring targets.
    stages["insane_ipc"] = StageCost(fixed=140.0, per_pkt=180.0)
    stages["insane_sched_slow"] = StageCost(fixed=250.0, per_pkt=472.0)
    stages["insane_dispatch_slow"] = StageCost(fixed=250.0, per_pkt=472.0)
    stages["insane_sched_fast"] = StageCost(fixed=330.0, per_pkt=320.0)
    stages["insane_dispatch_fast"] = StageCost(fixed=330.0, per_pkt=320.0)
    stages["insane_pool_fast"] = StageCost(fixed=0.0, per_pkt=0.0)
    stages["catnap_lib"] = StageCost(fixed=150.0, per_pkt=407.0)
    stages["catnip_lib"] = StageCost(per_pkt=212.5)
    stages["dds_serialize"] = scaled("dds_serialize", 1.30)
    stages["dds_eventloop"] = scaled("dds_eventloop", 1.30)
    stages["zmq_pipeline"] = scaled("zmq_pipeline", 1.30)
    return stages


def _cloud_scalars():
    scalars = dict(_local_scalars())
    scalars["wakeup_ns"] = 9800.0
    scalars["udp_poll_detect_ns"] = 312.0
    return scalars


#: The paper's local edge testbed: two hosts, Intel i9-10980XE @ 3.00 GHz,
#: Mellanox ConnectX-6 Dx 100 Gbps, back-to-back cable (no switch).
LOCAL_TESTBED = TestbedProfile(
    name="local",
    description="Two back-to-back hosts, i9-10980XE @3.0 GHz, 100 Gbps",
    link_propagation_ns=100.0,
    has_switch=False,
    cores=18,
    stages=_local_stages(),
    scalars=_local_scalars(),
)

#: The paper's public-cloud testbed: CloudLab, AMD EPYC 7452 @ 2.35 GHz,
#: Mellanox ConnectX-5 100 Gbps, Dell Z9264F-ON switch in between.
#: The switch adds ~1.4 us store-and-forward per traversal (paper: "the
#: switch adds on average 1.7 us and packets must traverse it twice").
CLOUD_TESTBED = TestbedProfile(
    name="cloud",
    description="CloudLab: two hosts via Dell switch, EPYC 7452 @2.35 GHz",
    link_propagation_ns=150.0,
    switch_forward_ns=1355.0,
    has_switch=True,
    cores=32,
    stages=_cloud_stages(),
    scalars=_cloud_scalars(),
)

PROFILES = {"local": LOCAL_TESTBED, "cloud": CLOUD_TESTBED}
