"""Point-to-point cable between two NICs (or a NIC and a switch port)."""

from repro.simnet import Counter


class Link:
    """A full-duplex cable with fixed propagation delay.

    Serialization is modelled at the transmitting NIC (or switch port), so a
    link only adds propagation.  For failure-injection experiments a
    ``loss_rate`` (0..1) may be set: each frame is then dropped with that
    probability, counted in :attr:`lost_frames` — INSANE is best-effort by
    design (paper §5.2), so applications must tolerate this.
    """

    def __init__(self, sim, end_a, end_b, propagation_ns):
        self.sim = sim
        self.end_a = end_a
        self.end_b = end_b
        self.propagation_ns = propagation_ns
        self.loss_rate = 0.0
        #: False while the cable is administratively/physically down
        #: (fault injection: link flap); every frame is then lost.
        self.up = True
        self.lost_frames = Counter("link.lost_frames")
        #: frames the fluid tier (repro.fluid) carried analytically rather
        #: than as simulated events; event-driven counters stay untouched
        #: so conservation across fidelity modes is checkable
        self.fluid_frames = Counter("link.fluid_frames")
        #: attached :class:`repro.trace.WireTap` instances
        self.taps = []
        end_a.egress = self
        end_b.egress = self
        # Fast-engine hop fusion (DESIGN.md §11): propagation and the
        # receiving NIC's rx-DMA hop execute as one scheduled event with
        # counter parity — the ring mutation lands on the bit-identical
        # instant via schedule_abs.  The legacy stack keeps the verbatim
        # two-event wire path.
        self._fuse = (
            getattr(sim, "_lane", None) is not None
            and not getattr(sim, "legacy_stack", False)
        )

    def carry(self, frame, sender):
        """Propagate ``frame`` from ``sender`` to the opposite end."""
        if sender is self.end_a:
            receiver = self.end_b
        elif sender is self.end_b:
            receiver = self.end_a
        else:
            raise ValueError("frame sent on a link by a foreign endpoint")
        dropped = (not self.up) or (
            self.loss_rate > 0.0 and self.sim.rng.random() < self.loss_rate
        )
        for tap in self.taps:
            tap.record(frame, self.sim.now, dropped=dropped)
        # frames wrap packets on NIC links; switch tests may carry bare
        # packets, so fall back to the frame itself
        trace = getattr(getattr(frame, "packet", frame), "trace", None)
        if trace is not None:
            # first hop only: re-stamping on the switch-to-NIC hop would
            # rewrite the value in its original insertion position and
            # break the stage ordering derived from insertion order
            trace.setdefault("link_carry", self.sim.now)
            if dropped:
                # duck-typed: lifecycle records close, plain dicts ignore
                mark = getattr(trace, "mark_dropped", None)
                if mark is not None:
                    mark(self.sim.now, "link down" if not self.up else "link loss")
        if dropped:
            self.lost_frames.value += 1
            return
        sim = self.sim
        if self._fuse and sim.observer is None:
            rx_dma = getattr(receiver, "_rx_dma_ns", None)
            if rx_dma is not None:
                # exact two-step instant: fl(fl(now + prop) + dma)
                arrival = sim.now + self.propagation_ns
                sim.schedule_abs(arrival + rx_dma, receiver._place_in_ring, frame)
                sim._executed += 1  # parity with the elided receive hop
                return
        sim.schedule(self.propagation_ns, receiver.receive, frame)

    def account_fluid(self, frames):
        """Account ``frames`` modelled (not simulated) crossings."""
        self.fluid_frames.value += frames

    # -- fault injection ---------------------------------------------------

    def take_down(self):
        """Cut the cable: every frame is lost until :meth:`bring_up`.

        Note the ordering with :attr:`loss_rate`: a downed link consumes
        no rng draws, so a flap does not shift the random stream of other
        loss processes (determinism contract).
        """
        self.up = False

    def bring_up(self):
        self.up = True
