"""A host: CPU cores, one NIC, and cost-charging helpers."""

from math import cos as _cos, log as _log, pi, sin as _sin, sqrt as _sqrt

from repro.simnet import Resource, Timeout

_TWOPI = 2.0 * pi


class Host:
    """One machine of a testbed.

    Software stage costs are charged by the processes that model threads on
    this host; :meth:`jitter` applies the profile's relative CPU noise so
    latency distributions have realistic (small) spread while medians stay
    on calibration.
    """

    def __init__(self, sim, profile, name, ip):
        self.sim = sim
        self.profile = profile
        self.name = name
        self.ip = ip
        self.nic = None  # wired by the topology builder
        self.cores = Resource(sim, capacity=profile.cores, name=name + ".cores")
        self._pinned = 0
        # jitter() runs once per charged stage — cache the rng and sigma,
        # and draw inline (see jitter) so the hot path makes no calls
        # beyond rng.random() itself
        self._rng = sim.rng
        self._cpu_sigma = profile.cpu_jitter
        # StageCost.cost is a pure function of (key, size, burst); memoize
        # the jitter-free value (jitter is applied on top per call)
        self._stage_cache = {}
        #: fault-injection multiplier on every software cost (1.0 = nominal);
        #: models a thermally-throttled or noisy-neighbour CPU
        self._slowdown = 1.0
        #: pre-overhaul behaviour: recompute costs and re-read rng/sigma
        #: attributes per call, as the pre-change stack did (perf baseline)
        self._legacy = getattr(sim, "legacy_stack", False)

    def jitter(self, cost_ns):
        """Apply the profile's CPU jitter to a software cost."""
        if self._legacy:
            sigma = self.profile.cpu_jitter
            if sigma <= 0:
                return cost_ns
            factor = self.sim.rng.gauss(1.0, sigma)
            return cost_ns * (factor if factor >= 0.5 else 0.5)
        if self._slowdown != 1.0:
            cost_ns *= self._slowdown
        sigma = self._cpu_sigma
        if sigma <= 0:
            return cost_ns
        # Inline of random.Random.gauss(1.0, sigma) (CPython's Box-Muller
        # with the pair cache in rng.gauss_next): draw-for-draw identical
        # to calling rng.gauss, minus one Python call per charged stage.
        rng = self._rng
        z = rng.gauss_next
        if z is None:
            uniform = rng.random
            x2pi = uniform() * _TWOPI
            g2rad = _sqrt(-2.0 * _log(1.0 - uniform()))
            z = _cos(x2pi) * g2rad
            rng.gauss_next = _sin(x2pi) * g2rad
        else:
            rng.gauss_next = None
        factor = 1.0 + z * sigma
        if factor < 0.5:
            factor = 0.5
        return cost_ns * factor

    def stage_cost(self, key, size, burst=1, jitter=True):
        """Cost of stage ``key`` for one packet of ``size`` bytes."""
        if self._legacy:
            cost = self.profile.stage(key).cost(size, burst=burst)
            return self.jitter(cost) if jitter else cost
        cache_key = (key, size, burst)
        cost = self._stage_cache.get(cache_key)
        if cost is None:
            if len(self._stage_cache) > 8192:
                self._stage_cache.clear()
            cost = self._stage_cache[cache_key] = self.profile.stage(key).cost(
                size, burst=burst
            )
        return self.jitter(cost) if jitter else cost

    def stage_cost_effect(self, key, size, burst=1):
        """A ``Timeout`` effect charging stage ``key`` to the caller."""
        return Timeout(self.stage_cost(key, size, burst=burst))

    def slow_down(self, factor):
        """Fault injection: scale every software cost by ``factor`` until
        :meth:`restore_speed` (jitter is applied on top, so the rng stream
        is unchanged — determinism contract)."""
        if factor <= 0:
            raise ValueError("slowdown factor must be > 0")
        self._slowdown = float(factor)

    def restore_speed(self):
        self._slowdown = 1.0

    def pin_core(self):
        """Reserve one core for a pinned thread (polling threads, apps).

        Raises ``RuntimeError`` when the host is out of cores, mirroring a
        real deployment error.
        """
        if not self.cores.try_acquire():
            raise RuntimeError("%s has no free cores to pin" % self.name)
        self._pinned += 1

    def unpin_core(self):
        self.cores.release()
        self._pinned -= 1

    @property
    def pinned_cores(self):
        return self._pinned

    def __repr__(self):
        return "Host(%s, ip=%s, profile=%s)" % (self.name, self.ip, self.profile.name)
