"""A host: CPU cores, one NIC, and cost-charging helpers."""

from repro.simnet import Resource, Timeout


class Host:
    """One machine of a testbed.

    Software stage costs are charged by the processes that model threads on
    this host; :meth:`jitter` applies the profile's relative CPU noise so
    latency distributions have realistic (small) spread while medians stay
    on calibration.
    """

    def __init__(self, sim, profile, name, ip):
        self.sim = sim
        self.profile = profile
        self.name = name
        self.ip = ip
        self.nic = None  # wired by the topology builder
        self.cores = Resource(sim, capacity=profile.cores, name=name + ".cores")
        self._pinned = 0

    def jitter(self, cost_ns):
        """Apply the profile's CPU jitter to a software cost."""
        sigma = self.profile.cpu_jitter
        if sigma <= 0:
            return cost_ns
        factor = self.sim.rng.gauss(1.0, sigma)
        if factor < 0.5:
            factor = 0.5
        return cost_ns * factor

    def stage_cost(self, key, size, burst=1, jitter=True):
        """Cost of stage ``key`` for one packet of ``size`` bytes."""
        cost = self.profile.stage(key).cost(size, burst=burst)
        return self.jitter(cost) if jitter else cost

    def stage_cost_effect(self, key, size, burst=1):
        """A ``Timeout`` effect charging stage ``key`` to the caller."""
        return Timeout(self.stage_cost(key, size, burst=burst))

    def pin_core(self):
        """Reserve one core for a pinned thread (polling threads, apps).

        Raises ``RuntimeError`` when the host is out of cores, mirroring a
        real deployment error.
        """
        if not self.cores.try_acquire():
            raise RuntimeError("%s has no free cores to pin" % self.name)
        self._pinned += 1

    def unpin_core(self):
        self.cores.release()
        self._pinned -= 1

    @property
    def pinned_cores(self):
        return self._pinned

    def __repr__(self):
        return "Host(%s, ip=%s, profile=%s)" % (self.name, self.ip, self.profile.name)
