"""Testbed construction: wire hosts, links, and (optionally) a switch."""

from repro.hw.host import Host
from repro.hw.link import Link
from repro.hw.nic import Nic
from repro.hw.switch import Switch
from repro.simnet import Simulator


class Testbed:
    """A simulated deployment matching one of the paper's testbeds.

    Two hosts on a profile without a switch are cabled back to back (the
    paper's local setup); any topology with a switch profile, or more than
    two hosts, goes through a switch (the CloudLab setup and the MoM
    experiments).
    """

    __test__ = False  # not a pytest class, despite the Test* name

    def __init__(self, profile, hosts=2, seed=0, sim=None):
        if hosts < 2:
            raise ValueError("a testbed needs at least two hosts")
        self.profile = profile
        self.sim = sim or Simulator(seed=seed)
        self.hosts = []
        self.switch = None
        self.links = []
        for index in range(hosts):
            name = "host%d" % index
            ip = "10.0.0.%d" % (index + 1)
            host = Host(self.sim, profile, name, ip)
            host.nic = Nic(self.sim, profile, ip, name=name + ".nic")
            self.hosts.append(host)
        if profile.has_switch or hosts > 2:
            self._wire_switch(profile)
        else:
            self.links.append(
                Link(
                    self.sim,
                    self.hosts[0].nic,
                    self.hosts[1].nic,
                    profile.link_propagation_ns,
                )
            )

    def _wire_switch(self, profile):
        switch_forward = profile.switch_forward_ns
        if switch_forward <= 0:
            # multi-host deployment on the local profile still needs a
            # fabric; use a fast cut-through value.
            switch_forward = 500.0
        self.switch = Switch(self.sim, profile)
        self.switch.forward_ns = switch_forward
        for host in self.hosts:
            port = self.switch.new_port()
            self.links.append(
                Link(self.sim, host.nic, port, profile.link_propagation_ns)
            )
            self.switch.bind(host.ip, port)
        # a host the fabric cannot reach is a wiring bug, surfaced at
        # build time instead of as silent runtime drops
        self.switch.check_reachable(host.ip for host in self.hosts)

    def host(self, index):
        return self.hosts[index]

    def host_by_ip(self, ip):
        for host in self.hosts:
            if host.ip == ip:
                return host
        raise KeyError("no host with ip %r" % (ip,))

    @classmethod
    def local(cls, hosts=2, seed=0):
        """The paper's local edge testbed (back-to-back 100 Gbps)."""
        from repro.hw.profiles import LOCAL_TESTBED

        return cls(LOCAL_TESTBED, hosts=hosts, seed=seed)

    @classmethod
    def cloud(cls, hosts=2, seed=0):
        """The paper's CloudLab testbed (switched 100 Gbps)."""
        from repro.hw.profiles import CLOUD_TESTBED

        return cls(CLOUD_TESTBED, hosts=hosts, seed=seed)
