"""Store-and-forward Ethernet switch model.

The cloud testbed interposes a Dell Z9264F-ON between the hosts; the paper
measures it adding ~1.7 us per traversal.  The model charges a fixed
forwarding latency plus output-port serialization at line rate, with a
bounded output queue per port (ceiling from the profile's
``switch_port_queue_ns``).

Two port flavours exist:

* :class:`SwitchPort` — the classic single-FIFO port every testbed uses;
* :class:`QosSwitchPort` — a trunk port with DiffServ-style per-class
  queues and strict-priority service, used by the generated city fabrics
  (:mod:`repro.hw.generate`) on ToR uplinks and core ports.

Mis-wiring is a build-time error, not a runtime drop: callers that know
the full destination set validate it with :meth:`Switch.check_reachable`,
which raises :class:`~repro.core.errors.TopologyError` for any host the
forwarding table cannot reach.  At runtime, a frame resolving back out
its ingress port is counted under the distinct ``hairpin_dropped``
counter — never folded into ``dropped`` (missing routes), so the two
failure modes stay tellable apart in digests and reports.
"""

from collections import deque

from repro.simnet import Counter


class SwitchPort:
    """One switch port; acts as the link endpoint facing a NIC."""

    #: generated-fabric annotation: which region this trunk port faces
    #: (None on plain testbed ports).
    region = None

    def __init__(self, switch, index):
        self.switch = switch
        self.index = index
        self.egress = None       # the Link wired to this port
        self._tx_free_at = 0.0

    def receive(self, frame):
        """Frame fully arrived from the attached NIC; hand to the fabric."""
        self.switch.forward(frame, self)

    def emit(self, frame):
        """Serialize ``frame`` out of this port after any queued frames."""
        sim = self.switch.sim
        start = max(sim.now, self._tx_free_at)
        departure = start + frame.wire_size * 8.0 / self.switch.bandwidth_gbps
        queued = departure - sim.now - frame.wire_size * 8.0 / self.switch.bandwidth_gbps
        trace = getattr(getattr(frame, "packet", frame), "trace", None)
        if queued > self.switch.max_port_queue_ns:
            self.switch.dropped.value += 1
            if trace is not None:
                mark = getattr(trace, "mark_dropped", None)
                if mark is not None:
                    mark(sim.now, "switch port %d queue overflow" % self.index)
            return
        self._tx_free_at = departure
        if trace is not None:
            # departure, not now: the stage covers port-queue residency
            trace["switch_out"] = departure
        sim.schedule_at(departure, self.egress.carry, frame, self)


class QosSwitchPort(SwitchPort):
    """A trunk port with DiffServ-style per-class output queues.

    Frames carry their class in ``packet.meta["qos_class"]`` (lower index
    = higher priority); a frame without a class rides the lowest class.
    The port keeps one FIFO per class and serves the highest-priority
    head at every departure (strict priority).  Admission is bounded per
    class: a frame whose wait-before-service would exceed its class's
    queue-delay ceiling is dropped on arrival — counted in the
    switch-wide ``dropped`` *and* the port's per-class ``class_dropped``,
    and it never advances the port's committed-transmit horizon.
    """

    def __init__(self, switch, index, class_queue_ns):
        super().__init__(switch, index)
        if not class_queue_ns:
            raise ValueError("a QoS port needs at least one class")
        #: class index -> queue-delay ceiling (ns) for frames of that class
        self.class_queue_ns = dict(class_queue_ns)
        self._classes = sorted(self.class_queue_ns)
        self._queues = {cls: deque() for cls in self._classes}
        self._busy = False
        self.class_dropped = {cls: 0 for cls in self._classes}

    def _class_of(self, frame):
        packet = getattr(frame, "packet", frame)
        extra = getattr(packet, "_extra", None)
        cls = extra.get("qos_class") if extra else None
        return cls if cls in self._queues else self._classes[-1]

    def emit(self, frame):
        sim = self.switch.sim
        now = sim.now
        cls = self._class_of(frame)
        serialization = frame.wire_size * 8.0 / self.switch.bandwidth_gbps
        start = self._tx_free_at
        if start < now:
            start = now
        if start - now > self.class_queue_ns[cls]:
            self.switch.dropped.value += 1
            self.class_dropped[cls] += 1
            trace = getattr(getattr(frame, "packet", frame), "trace", None)
            if trace is not None:
                mark = getattr(trace, "mark_dropped", None)
                if mark is not None:
                    mark(now, "switch port %d class %d queue overflow"
                         % (self.index, cls))
            return
        self._tx_free_at = start + serialization
        self._queues[cls].append((frame, serialization))
        if not self._busy:
            self._start_next()

    def _start_next(self):
        for cls in self._classes:
            queue = self._queues[cls]
            if queue:
                frame, serialization = queue.popleft()
                self._busy = True
                self.switch.sim.schedule(serialization, self._depart, frame)
                return
        self._busy = False

    def _depart(self, frame):
        trace = getattr(getattr(frame, "packet", frame), "trace", None)
        if trace is not None:
            trace["switch_out"] = self.switch.sim.now
        self.egress.carry(frame, self)
        self._start_next()


class Switch:
    """A learning-free switch with a static IP-to-port table."""

    def __init__(self, sim, profile, name="switch"):
        self.sim = sim
        self.name = name
        self.bandwidth_gbps = profile.nic_bandwidth_gbps
        self.forward_ns = profile.switch_forward_ns
        #: drop frames that would wait more than this in an output queue
        #: (profile-calibrated; ad-hoc profile objects fall back to the
        #: historical deep-buffer default)
        self.max_port_queue_ns = getattr(
            profile, "switch_port_queue_ns", 2_000_000.0
        )
        self.ports = []
        self.table = {}
        self.forwarded = Counter(name + ".forwarded")
        self.dropped = Counter(name + ".dropped")
        #: frames whose route resolved back out their ingress port —
        #: a distinct failure mode from a missing route (``dropped``)
        self.hairpin_dropped = Counter(name + ".hairpin_dropped")

    def new_port(self):
        port = SwitchPort(self, len(self.ports))
        self.ports.append(port)
        return port

    def new_qos_port(self, class_queue_ns, region=None):
        """A trunk port with per-class queues (see :class:`QosSwitchPort`)."""
        port = QosSwitchPort(self, len(self.ports), class_queue_ns)
        port.region = region
        self.ports.append(port)
        return port

    def bind(self, ip, port):
        """Associate a destination IP with an output port."""
        self.table[ip] = port

    def check_reachable(self, ips):
        """Raise :class:`~repro.core.errors.TopologyError` unless every ip
        in ``ips`` resolves to an output port of this switch.

        Topology builders call this once after wiring; a destination that
        would silently drop every frame at runtime is a build bug.
        """
        missing = sorted(ip for ip in ips if ip not in self.table)
        if missing:
            from repro.core.errors import TopologyError

            raise TopologyError(
                "%s cannot reach %d host(s): %s — forwarding table is "
                "mis-wired" % (self.name, len(missing), ", ".join(missing))
            )

    def forward(self, frame, in_port):
        port = self.table.get(frame.dst_ip)
        trace = getattr(getattr(frame, "packet", frame), "trace", None)
        if port is None:
            self.dropped.value += 1
            if trace is not None:
                mark = getattr(trace, "mark_dropped", None)
                if mark is not None:
                    mark(self.sim.now, "switch: no route to %s" % frame.dst_ip)
            return
        if port is in_port:
            self.hairpin_dropped.value += 1
            if trace is not None:
                mark = getattr(trace, "mark_dropped", None)
                if mark is not None:
                    mark(self.sim.now, "switch: hairpin on port %d to %s"
                         % (port.index, frame.dst_ip))
            return
        self.forwarded.value += 1
        if trace is not None:
            trace["switch_in"] = self.sim.now
        self.sim.schedule(self.forward_ns, port.emit, frame)
