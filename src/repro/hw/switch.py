"""Store-and-forward Ethernet switch model.

The cloud testbed interposes a Dell Z9264F-ON between the hosts; the paper
measures it adding ~1.7 us per traversal.  The model charges a fixed
forwarding latency plus output-port serialization at line rate, with a
bounded output queue per port.
"""

from repro.simnet import Counter


class SwitchPort:
    """One switch port; acts as the link endpoint facing a NIC."""

    def __init__(self, switch, index):
        self.switch = switch
        self.index = index
        self.egress = None       # the Link wired to this port
        self._tx_free_at = 0.0

    def receive(self, frame):
        """Frame fully arrived from the attached NIC; hand to the fabric."""
        self.switch.forward(frame, self)

    def emit(self, frame):
        """Serialize ``frame`` out of this port after any queued frames."""
        sim = self.switch.sim
        start = max(sim.now, self._tx_free_at)
        departure = start + frame.wire_size * 8.0 / self.switch.bandwidth_gbps
        queued = departure - sim.now - frame.wire_size * 8.0 / self.switch.bandwidth_gbps
        trace = getattr(getattr(frame, "packet", frame), "trace", None)
        if queued > self.switch.max_port_queue_ns:
            self.switch.dropped.value += 1
            if trace is not None:
                mark = getattr(trace, "mark_dropped", None)
                if mark is not None:
                    mark(sim.now, "switch port %d queue overflow" % self.index)
            return
        self._tx_free_at = departure
        if trace is not None:
            # departure, not now: the stage covers port-queue residency
            trace["switch_out"] = departure
        sim.schedule_at(departure, self.egress.carry, frame, self)


class Switch:
    """A learning-free switch with a static IP-to-port table."""

    def __init__(self, sim, profile, name="switch"):
        self.sim = sim
        self.name = name
        self.bandwidth_gbps = profile.nic_bandwidth_gbps
        self.forward_ns = profile.switch_forward_ns
        #: drop frames that would wait more than this in an output queue
        self.max_port_queue_ns = 2_000_000.0
        self.ports = []
        self.table = {}
        self.forwarded = Counter(name + ".forwarded")
        self.dropped = Counter(name + ".dropped")

    def new_port(self):
        port = SwitchPort(self, len(self.ports))
        self.ports.append(port)
        return port

    def bind(self, ip, port):
        """Associate a destination IP with an output port."""
        self.table[ip] = port

    def forward(self, frame, in_port):
        port = self.table.get(frame.dst_ip)
        trace = getattr(getattr(frame, "packet", frame), "trace", None)
        if port is None or port is in_port:
            self.dropped.value += 1
            if trace is not None:
                mark = getattr(trace, "mark_dropped", None)
                if mark is not None:
                    mark(self.sim.now, "switch: no route to %s" % frame.dst_ip)
            return
        self.forwarded.value += 1
        if trace is not None:
            trace["switch_in"] = self.sim.now
        self.sim.schedule(self.forward_ns, port.emit, frame)
