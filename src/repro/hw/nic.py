"""Network interface card model.

A :class:`Nic` owns a transmit serializer (one frame on the wire at a time,
at line rate) and a bounded receive ring.  Ring overflow drops frames and is
counted — the mechanism behind the paper's observation that "a single sender
easily overflows a single-core sink" (§8).
"""

from repro.simnet import Counter, Store


class Frame:
    """A packet in flight between NICs, with link-layer bookkeeping."""

    __slots__ = ("packet", "src_ip", "dst_ip")

    def __init__(self, packet):
        self.packet = packet
        self.src_ip = packet.src_ip
        self.dst_ip = packet.dst_ip

    @property
    def wire_size(self):
        return self.packet.wire_size

    def __repr__(self):
        return "Frame(%r)" % (self.packet,)


class Nic:
    """A single-port NIC attached to a link or a switch port."""

    def __init__(self, sim, profile, ip, name=None):
        self.sim = sim
        self.profile = profile
        self.ip = ip
        self.name = name or ("nic-%s" % ip)
        self.rx_ring = Store(sim, capacity=profile.nic_rx_ring_slots, name=self.name + ".rx")
        self._steering = {}  # dst_port -> queue (receive flow steering)
        self.egress = None  # Link or SwitchPort; set by topology wiring
        self.tx_frames = Counter(self.name + ".tx_frames")
        self.rx_frames = Counter(self.name + ".rx_frames")
        self.rx_dropped = Counter(self.name + ".rx_dropped")
        # fluid-tier accounting (repro.fluid): frames the aggregate model
        # carried analytically instead of as simulated events.  Kept apart
        # from the event-driven counters so conservation is checkable:
        # full-DES tx_frames == hybrid (tx_frames + fluid_tx_frames).
        self.fluid_tx_frames = Counter(self.name + ".fluid_tx_frames")
        self.fluid_rx_frames = Counter(self.name + ".fluid_rx_frames")
        self.fluid_tx_bytes = 0.0
        self.fluid_rx_bytes = 0.0
        self._tx_free_at = 0.0
        # hot-path scalars, hoisted out of the per-packet profile lookups
        self._bandwidth_gbps = profile.nic_bandwidth_gbps
        self._tx_dma_ns = profile.nic_tx_dma_ns
        self._rx_dma_ns = profile.nic_rx_dma_ns
        # pre-overhaul behaviour (per-packet profile lookups, stamp() and
        # increment() calls) — only the perf baseline sets legacy_stack
        if getattr(sim, "legacy_stack", False):
            self.transmit = self._transmit_legacy
            self._place_in_ring = self._place_in_ring_legacy

    # -- transmit ----------------------------------------------------------

    def serialization_ns(self, frame):
        """Time to clock ``frame`` onto the wire at line rate."""
        return frame.wire_size * 8.0 / self.profile.nic_bandwidth_gbps

    def tx_backlog_ns(self, now):
        """How far ahead of ``now`` the transmit queue is committed."""
        return max(0.0, self._tx_free_at - now)

    def transmit(self, packet):
        """Queue ``packet`` for transmission; returns its wire departure time.

        Models DMA fetch followed by store-and-forward serialization on the
        NIC's single transmit queue.
        """
        if self.egress is None:
            raise RuntimeError("%s is not wired to a link" % self.name)
        frame = Frame(packet)
        sim = self.sim
        now = sim.now
        start = now + self._tx_dma_ns
        if start < self._tx_free_at:
            start = self._tx_free_at
        departure = start + frame.wire_size * 8.0 / self._bandwidth_gbps
        self._tx_free_at = departure
        self.tx_frames.value += 1
        if packet.trace is not None:
            packet.trace["nic_tx_departure"] = departure
        # schedule(departure - now) computes the same now+delay sum as
        # schedule_at would, without the extra call
        sim.schedule(departure - now, self.egress.carry, frame, self)
        return departure

    def _transmit_legacy(self, packet):
        """Pre-overhaul transmit, verbatim (perf baseline)."""
        if self.egress is None:
            raise RuntimeError("%s is not wired to a link" % self.name)
        frame = Frame(packet)
        now = self.sim.now
        ready = now + self.profile.nic_tx_dma_ns
        start = max(ready, self._tx_free_at)
        departure = start + self.serialization_ns(frame)
        self._tx_free_at = departure
        self.tx_frames.increment()
        packet.stamp("nic_tx_departure", departure)
        self.sim.schedule_at(departure, self.egress.carry, frame, self)
        return departure

    def account_fluid_tx(self, frames, byte_count=0.0):
        """Account ``frames`` modelled (not simulated) outgoing frames."""
        self.fluid_tx_frames.value += frames
        self.fluid_tx_bytes += byte_count

    def account_fluid_rx(self, frames, byte_count=0.0):
        """Account ``frames`` modelled (not simulated) incoming frames."""
        self.fluid_rx_frames.value += frames
        self.fluid_rx_bytes += byte_count

    # -- receive -----------------------------------------------------------

    def receive(self, frame):
        """Called by the wire when a frame fully arrives at this NIC."""
        self.sim.schedule(self._rx_dma_ns, self._place_in_ring, frame)

    def _place_in_ring(self, frame):
        packet = frame.packet
        trace = packet.trace
        if trace is not None:
            trace["nic_rx_arrival"] = self.sim.now
        queue = self._steering.get(packet.dst_port, self.rx_ring)
        if queue.try_put(packet):
            self.rx_frames.value += 1
        else:
            self.rx_dropped.value += 1
            if trace is not None:
                # duck-typed: lifecycle records close, plain dicts ignore
                mark = getattr(trace, "mark_dropped", None)
                if mark is not None:
                    mark(self.sim.now, "nic rx ring overflow: %s" % self.name)

    def _place_in_ring_legacy(self, frame):
        """Pre-overhaul ring placement, verbatim (perf baseline)."""
        packet = frame.packet
        packet.stamp("nic_rx_arrival", self.sim.now)
        queue = self._steering.get(packet.dst_port, self.rx_ring)
        if queue.try_put(packet):
            self.rx_frames.increment()
        else:
            self.rx_dropped.increment()

    # -- fault injection ----------------------------------------------------

    def _all_queues(self):
        queues = [self.rx_ring]
        for queue in self._steering.values():
            if queue not in queues:
                queues.append(queue)
        return queues

    def squeeze_queues(self, capacity):
        """Shrink every receive queue to ``capacity`` slots (fault
        injection: models descriptor/memory pressure on the NIC — frames
        beyond the squeezed capacity are dropped and counted).  Returns
        the saved capacities for :meth:`restore_queues`."""
        if capacity < 1:
            raise ValueError("squeezed capacity must be >= 1")
        saved = []
        for queue in self._all_queues():
            saved.append((queue, queue.capacity))
            queue.capacity = capacity
        return saved

    def restore_queues(self, saved):
        """Undo a :meth:`squeeze_queues`."""
        for queue, capacity in saved:
            queue.capacity = capacity

    # -- receive flow steering ----------------------------------------------

    def create_queue(self, ports, capacity=None):
        """Steer the given destination ports to a dedicated receive queue.

        Models the NIC's receive flow steering: kernel-bypassing datapaths
        claim their traffic by port so the kernel (default ring) never sees
        it.  Returns the new queue.
        """
        queue = Store(
            self.sim,
            capacity=capacity or self.profile.nic_rx_ring_slots,
            name="%s.q%d" % (self.name, len(self._steering)),
        )
        for port in ports:
            if port in self._steering:
                raise ValueError("port %d already steered on %s" % (port, self.name))
            self._steering[port] = queue
        return queue

    def steer_port(self, port, queue):
        """Add one more port to an existing steering queue."""
        if port in self._steering:
            raise ValueError("port %d already steered on %s" % (port, self.name))
        self._steering[port] = queue

    def release_port(self, port):
        self._steering.pop(port, None)
