"""Hardware models: CPUs, NICs, links, switches, hosts, and testbeds.

This package substitutes the paper's physical testbeds (Table 2): a *local*
edge testbed (two back-to-back hosts, Intel i9 @ 3.0 GHz, Mellanox 100 Gbps)
and a *public cloud* testbed (CloudLab, AMD EPYC @ 2.35 GHz, 100 Gbps through
a Dell switch).  All timing constants live in :mod:`repro.hw.profiles`,
annotated with the paper numbers they were calibrated against.
"""

from repro.hw.profiles import (
    CLOUD_TESTBED,
    LOCAL_TESTBED,
    TestbedProfile,
)
from repro.hw.nic import Frame, Nic
from repro.hw.link import Link
from repro.hw.switch import Switch
from repro.hw.host import Host
from repro.hw.topology import Testbed

__all__ = [
    "CLOUD_TESTBED",
    "Frame",
    "Host",
    "LOCAL_TESTBED",
    "Link",
    "Nic",
    "Switch",
    "Testbed",
    "TestbedProfile",
]
