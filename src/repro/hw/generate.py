"""Seeded city-scale topology generation (ROADMAP item 1).

The paper's testbeds stop at two hosts and one switch; INSANE's pitch —
QoS-aware acceleration across an *edge cloud* — only becomes interesting
at hundreds of nodes.  This module generates that scale deterministically:
``N`` edge hosts spread over ``R`` regions, a two-tier switch fabric (one
ToR per region plus a core), and DiffServ-style QoS classes on every
trunk port (:class:`~repro.hw.switch.QosSwitchPort`), all a pure function
of ``(seed, spec)``.

The workload is frame-level: paced one-way flows plus request/response
("rpc") flows against a per-region service host placed by
:class:`~repro.cloud.placement.RegionPlacer`.  Per-datapath software
costs are charged as fixed stage sums from the hardware profile — no
jitter, no rng draws during simulation — so a run's delivery records are
bit-identical however the event graph is executed.  That property is what
:mod:`repro.dist` builds on: the same :class:`CityNetwork` builder
constructs either the whole city in one simulator (serial reference) or
one region-subset per partition, with trunk traffic crossing the cut
through a :class:`TrunkCable` boundary instead of a local link.

Float discipline: a boundary arrival is computed as ``now +
trunk_propagation_ns`` — the *same* expression :meth:`Simulator.schedule`
evaluates — so the event instant on the far side of the cut is
bit-identical to the serial run's.  Per-flow phase offsets are derived
from sha256 at full double precision, which keeps event timestamps
distinct (no ties to arbitrate) across the whole city.
"""

import hashlib
import json
import random

from repro.hw.host import Host
from repro.hw.link import Link
from repro.hw.nic import Nic
from repro.hw.switch import Switch, SwitchPort
from repro.netstack import Packet

#: datapath -> (tx stage keys, rx stage keys) charged per message as a
#: fixed (jitter-free) cost from the hardware profile.
DATAPATH_STAGES = {
    "udp": (("udp_tx",), ("udp_rx",)),
    "xdp": (("xdp_tx",), ("xdp_rx",)),
    "dpdk": (("ustack_tx", "dpdk_tx"), ("dpdk_rx", "ustack_rx")),
    "rdma": (("rdma_post",), ("rdma_poll_cq",)),
}

#: first send instant (ns); every flow k-th message launches at
#: ``CITY_EPOCH_NS + phase + k * interval`` plus its datapath tx cost.
CITY_EPOCH_NS = 1000.0

#: spec key -> (default, validator); the full generator vocabulary.
_SPEC_DEFAULTS = {
    "hosts": 64,
    "regions": 4,
    "classes": 3,
    "flows_per_host": 1,
    "messages": 8,
    "size": 512,
    "interval_ns": 20_000.0,
    "trunk_propagation_ns": 20_000.0,
    "access_propagation_ns": 500.0,
    "tor_forward_ns": 600.0,
    "core_forward_ns": 1355.0,
    "trunk_queue_ns": 2_000_000.0,
    "service_ns": 2_000.0,
    "rpc_every": 3,
    "datapath": "udp",
    "profile": "cloud",
    "seed": 0,
}

#: named city presets — the vocabulary ``topology: <name>`` resolves.
#: Content-addressed by :func:`topology_digest`, so editing a preset
#: invalidates every cached cell that named it.
CITY_PRESETS = {
    "smoke64": {"hosts": 64, "regions": 4, "messages": 8},
    "city256": {"hosts": 256, "regions": 8, "messages": 6},
    "metro1k": {"hosts": 1024, "regions": 16, "messages": 4,
                "flows_per_host": 1},
}


def _topology_error(message):
    from repro.core.errors import TopologyError

    return TopologyError(message)


def normalize_city_spec(spec):
    """Validate a city spec and fill defaults; returns the canonical dict.

    Raises :class:`~repro.core.errors.TopologyError` on unknown keys or
    out-of-range values — a generator spec is topology, and bad topology
    fails at build time here like everywhere else.
    """
    if not isinstance(spec, dict):
        raise _topology_error(
            "a city spec must be a mapping, got %s" % type(spec).__name__
        )
    unknown = sorted(set(spec) - set(_SPEC_DEFAULTS))
    if unknown:
        raise _topology_error(
            "unknown city spec key(s) %s (known: %s)"
            % (", ".join(unknown), ", ".join(sorted(_SPEC_DEFAULTS)))
        )
    out = dict(_SPEC_DEFAULTS)
    out.update(spec)
    for key in ("hosts", "regions", "classes", "flows_per_host", "messages",
                "size", "rpc_every", "seed"):
        value = out[key]
        if isinstance(value, bool) or not isinstance(value, int):
            raise _topology_error("%s must be an integer, got %r"
                                  % (key, value))
    for key in ("interval_ns", "trunk_propagation_ns",
                "access_propagation_ns", "tor_forward_ns", "core_forward_ns",
                "trunk_queue_ns", "service_ns"):
        value = out[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _topology_error("%s must be a number, got %r"
                                  % (key, value))
        out[key] = float(value)
    if out["hosts"] < 4:
        raise _topology_error("a city needs >= 4 hosts, got %d" % out["hosts"])
    if not 2 <= out["regions"] <= out["hosts"] // 2:
        raise _topology_error(
            "regions must be in [2, hosts/2] (>= 2 hosts per region), "
            "got %d regions for %d hosts" % (out["regions"], out["hosts"])
        )
    if out["hosts"] // out["regions"] > 254:
        raise _topology_error("more than 254 hosts per region does not fit "
                              "the 10.R.0.K address plan")
    if not 1 <= out["classes"] <= 8:
        raise _topology_error("classes must be in [1, 8], got %d"
                              % out["classes"])
    for key, lo in (("flows_per_host", 1), ("messages", 1), ("size", 1),
                    ("rpc_every", 0), ("seed", 0)):
        if out[key] < lo:
            raise _topology_error("%s must be >= %d, got %d"
                                  % (key, lo, out[key]))
    if out["interval_ns"] <= 0 or out["trunk_propagation_ns"] <= 0 \
            or out["access_propagation_ns"] <= 0:
        raise _topology_error(
            "interval_ns, trunk_propagation_ns and access_propagation_ns "
            "must be > 0 (trunk propagation is the conservative lookahead)"
        )
    if out["trunk_queue_ns"] <= 0:
        raise _topology_error("trunk_queue_ns must be > 0")
    if out["datapath"] not in DATAPATH_STAGES:
        raise _topology_error(
            "unknown datapath %r (choose from %s)"
            % (out["datapath"], ", ".join(sorted(DATAPATH_STAGES)))
        )
    from repro.hw.profiles import PROFILES

    if out["profile"] not in PROFILES:
        raise _topology_error(
            "unknown profile %r (choose from %s)"
            % (out["profile"], ", ".join(sorted(PROFILES)))
        )
    return out


def resolve_topology(value):
    """A city spec from a preset name or a mapping, normalized."""
    if isinstance(value, str):
        preset = CITY_PRESETS.get(value)
        if preset is None:
            raise _topology_error(
                "unknown city preset %r (presets: %s)"
                % (value, ", ".join(sorted(CITY_PRESETS)))
            )
        return normalize_city_spec(preset)
    return normalize_city_spec(value)


def topology_digest(value):
    """sha256 over the *resolved* canonical spec content.

    Presets are resolved by name first, so a cache entry keyed through
    this digest goes stale the moment the preset's content changes —
    even though the cell that named it is byte-identical.
    """
    spec = resolve_topology(value)
    text = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def class_queue_ceilings(spec):
    """Per-class queue-delay ceilings (ns) for the trunk ports.

    Lower class index = higher priority = shallower queue: the EF-style
    class 0 gets ``trunk_queue_ns / classes`` (latency-bounded), the
    lowest class the full ``trunk_queue_ns`` (throughput-tolerant).
    """
    classes = spec["classes"]
    base = spec["trunk_queue_ns"]
    return {cls: base * (cls + 1) / classes for cls in range(classes)}


def _phase_ns(seed, flow_id, interval_ns):
    """A full-double phase offset in ``[0, interval)`` from sha256.

    53 effective random bits per flow keep event timestamps distinct
    city-wide, so no two events ever tie at a shared contention point —
    the property that makes partitioned execution order-insensitive.
    """
    digest = hashlib.sha256(b"city-phase:%d:%d" % (seed, flow_id)).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return fraction * interval_ns


def city_plan(spec):
    """The deterministic build plan of one city: hosts, regions, flows.

    A pure function of the normalized spec (generation-time rng seeded
    from ``spec['seed']``); building the same plan twice — or in any
    partition of any run — yields identical dicts.
    """
    spec = normalize_city_spec(spec)
    rng = random.Random(spec["seed"] ^ 0xC17F)
    hosts = []
    regions = []
    base, extra = divmod(spec["hosts"], spec["regions"])
    cursor = 0
    for region in range(spec["regions"]):
        count = base + (1 if region < extra else 0)
        members = []
        for slot in range(count):
            index = cursor + slot
            hosts.append({
                "index": index,
                "name": "h%d" % index,
                "ip": "10.%d.0.%d" % (region, slot + 1),
                "region": region,
                # at least one accelerated host per region so the placer
                # always has an eligible target
                "accelerated": slot == 0 or rng.random() < 0.5,
            })
            members.append(index)
        regions.append({"index": region, "hosts": members})
        cursor += count

    from repro.cloud.placement import RegionPlacer

    placer = RegionPlacer(capacity_per_host=max(1, spec["flows_per_host"]))
    for region in regions:
        candidates = [hosts[i] for i in region["hosts"]]
        chosen = placer.place("svc-r%d" % region["index"], candidates,
                              requires_acceleration=True)
        region["service"] = chosen["index"]

    flows = []
    flow_id = 0
    for host in hosts:
        for _ in range(spec["flows_per_host"]):
            rpc = spec["rpc_every"] > 0 and \
                flow_id % spec["rpc_every"] == spec["rpc_every"] - 1
            if rpc:
                other = rng.randrange(spec["regions"] - 1)
                if other >= host["region"]:
                    other += 1
                dst = regions[other]["service"]
            else:
                dst = rng.randrange(spec["hosts"] - 1)
                if dst >= host["index"]:
                    dst += 1
            flows.append({
                "id": flow_id,
                "src": host["index"],
                "dst": dst,
                "kind": "rpc" if rpc else "paced",
                "cls": flow_id % spec["classes"],
                "phase_ns": _phase_ns(spec["seed"], flow_id,
                                      spec["interval_ns"]),
            })
            flow_id += 1
    return {"spec": spec, "hosts": hosts, "regions": regions, "flows": flows}


class TrunkCable:
    """The uplink side of a trunk: deliver locally or export the frame.

    Replaces the uplink port's view of the trunk link.  A frame bound for
    an owned region is scheduled onto the local core exactly as a
    :class:`~repro.hw.link.Link` would (event at ``now +
    propagation_ns``); a frame bound for a remote region becomes a
    boundary record at that same instant for :mod:`repro.dist.sync` to
    ship.  The serial build uses this class too, with every region owned,
    so the serial and partitioned event graphs share one code path.
    """

    def __init__(self, net, src_region):
        self.net = net
        self.src_region = src_region
        self.propagation_ns = float(net.spec["trunk_propagation_ns"])

    def carry(self, frame, sender):
        net = self.net
        dst_region = net.region_of_ip(frame.dst_ip)
        if dst_region in net.owned_regions:
            net.sim.schedule(self.propagation_ns, net._trunk_arrive,
                             frame, self.src_region)
            return
        # same float expression schedule() computes for the heap instant
        arrival = net.sim.now + self.propagation_ns
        net.export_boundary(dst_region, arrival, frame)


class CityNetwork:
    """One generated city (or one region-subset of it) wired onto a sim.

    ``owned_regions=None`` builds the full city — the serial reference.
    A partition passes its owned region set; only those hosts, ToRs, and
    core ports are instantiated, and cross-cut traffic is exported as
    boundary records (consumed by :meth:`inject_boundary` on the owner).
    """

    def __init__(self, sim, spec, owned_regions=None, plan=None):
        self.plan = plan or city_plan(spec)
        self.spec = self.plan["spec"]
        self.sim = sim
        all_regions = set(range(self.spec["regions"]))
        self.owned_regions = (all_regions if owned_regions is None
                              else set(owned_regions))
        bad = self.owned_regions - all_regions
        if bad:
            raise _topology_error("cannot own unknown region(s) %s"
                                  % sorted(bad))

        from repro.hw.profiles import PROFILES

        profile = PROFILES[self.spec["profile"]]
        self.profile = profile
        size = self.spec["size"]
        tx_stages, rx_stages = DATAPATH_STAGES[self.spec["datapath"]]
        self.tx_cost_ns = sum(profile.stage(key).cost(size)
                              for key in tx_stages)
        self.rx_cost_ns = sum(profile.stage(key).cost(size)
                              for key in rx_stages)

        self._region_by_ip = {h["ip"]: h["region"] for h in self.plan["hosts"]}
        self._host_by_ip = {}
        self._service_hosts = {r["index"]: r["service"]
                               for r in self.plan["regions"]}
        ceilings = class_queue_ceilings(self.spec)

        self.hosts = {}          # host index -> Host (owned only)
        self.tors = {}           # region -> ToR Switch
        self.core = Switch(sim, profile, name="core")
        self.core.forward_ns = self.spec["core_forward_ns"]
        self.core_ports = {}     # region -> core trunk QoS port
        self.uplinks = {}        # region -> ToR uplink QoS port
        self.links = []
        # sentinel ingress for boundary-injected frames: never a table
        # target, so the hairpin check can't trip on it
        self._inject_port = SwitchPort(self.core, -1)

        all_ips = [h["ip"] for h in self.plan["hosts"]]
        for region in self.plan["regions"]:
            r = region["index"]
            if r not in self.owned_regions:
                continue
            tor = Switch(sim, profile, name="tor%d" % r)
            tor.forward_ns = self.spec["tor_forward_ns"]
            self.tors[r] = tor
            for index in region["hosts"]:
                record = self.plan["hosts"][index]
                host = Host(sim, profile, record["name"], record["ip"])
                host.nic = Nic(sim, profile, record["ip"],
                               name=record["name"] + ".nic")
                self.hosts[index] = host
                self._host_by_ip[record["ip"]] = host
                port = tor.new_port()
                self.links.append(Link(sim, host.nic, port,
                                       self.spec["access_propagation_ns"]))
                tor.bind(record["ip"], port)
                host.nic.rx_ring.on_item = self._make_drain(host)
            uplink = tor.new_qos_port(ceilings, region=r)
            self.uplinks[r] = uplink
            core_port = self.core.new_qos_port(ceilings, region=r)
            self.core_ports[r] = core_port
            # the trunk Link carries the core->ToR direction; the
            # ToR->core direction goes through the TrunkCable so remote
            # regions can be cut away (set *after* Link wires egress)
            self.links.append(Link(sim, core_port, uplink,
                                   self.spec["trunk_propagation_ns"]))
            uplink.egress = TrunkCable(self, r)
            for ip in all_ips:
                if self._region_by_ip[ip] != r:
                    tor.bind(ip, uplink)
            tor.check_reachable(all_ips)
        for ip in all_ips:
            r = self._region_by_ip[ip]
            if r in self.owned_regions:
                self.core.bind(ip, self.core_ports[r])
        self.core.check_reachable(
            ip for ip in all_ips
            if self._region_by_ip[ip] in self.owned_regions
        )

        #: delivery records [flow_id, msg_index, delivered_ns]
        self.deliveries = []
        #: boundary exports: dst region -> [(arrival, flow, k, is_reply)]
        self.outbox = []

    # -- topology queries --------------------------------------------------

    def region_of_ip(self, ip):
        return self._region_by_ip[ip]

    def owns_host(self, index):
        return index in self.hosts

    # -- workload ----------------------------------------------------------

    def schedule_workload(self):
        """Schedule every owned flow's sends (call once, before running)."""
        spec = self.spec
        for flow in self.plan["flows"]:
            if flow["src"] not in self.hosts:
                continue
            base = CITY_EPOCH_NS + flow["phase_ns"]
            for k in range(spec["messages"]):
                depart = base + k * spec["interval_ns"] + self.tx_cost_ns
                self.sim.schedule_abs(depart, self._launch, flow["id"], k)

    def _make_packet(self, flow, k, is_reply):
        src = self.plan["hosts"][flow["dst" if is_reply else "src"]]
        dst = self.plan["hosts"][flow["src" if is_reply else "dst"]]
        packet = Packet(src["ip"], dst["ip"], 4000, 5000,
                        payload_len=self.spec["size"])
        packet.meta["qos_class"] = flow["cls"]
        packet.meta["city"] = (flow["id"], k, is_reply)
        return packet

    def _launch(self, flow_id, k):
        flow = self.plan["flows"][flow_id]
        packet = self._make_packet(flow, k, False)
        self.hosts[flow["src"]].nic.transmit(packet)

    def _send_reply(self, flow_id, k):
        flow = self.plan["flows"][flow_id]
        packet = self._make_packet(flow, k, True)
        self.hosts[flow["dst"]].nic.transmit(packet)

    def _make_drain(self, host):
        def drain():
            ring = host.nic.rx_ring
            while True:
                ok, packet = ring.try_get()
                if not ok:
                    return
                self._deliver(host, packet)
        return drain

    def _deliver(self, host, packet):
        flow_id, k, is_reply = packet.meta["city"]
        flow = self.plan["flows"][flow_id]
        delivered = self.sim.now + self.rx_cost_ns
        if flow["kind"] == "paced" or is_reply:
            self.deliveries.append([flow_id, k, delivered])
            return
        # rpc request at the service host: turn it around after the
        # service time plus the reply's tx datapath cost
        reply_at = delivered + self.spec["service_ns"] + self.tx_cost_ns
        self.sim.schedule_abs(reply_at, self._send_reply, flow_id, k)

    # -- boundary ----------------------------------------------------------

    def export_boundary(self, dst_region, arrival, frame):
        flow_id, k, is_reply = frame.packet.meta["city"]
        self.outbox.append((dst_region, arrival, flow_id, k, is_reply))

    def take_outbox(self):
        """Drain pending boundary exports (records, not frames)."""
        out = self.outbox
        self.outbox = []
        return out

    def inject_boundary(self, arrival, flow_id, k, is_reply):
        """Re-materialize a boundary frame arriving at the core at
        ``arrival`` (the bit-identical serial instant)."""
        from repro.hw.nic import Frame

        flow = self.plan["flows"][flow_id]
        packet = self._make_packet(flow, k, is_reply)
        self.sim.schedule_abs(arrival, self.core.forward, Frame(packet),
                              self._inject_port)

    def _trunk_arrive(self, frame, src_region):
        self.core.forward(frame, self.core_ports[src_region])

    # -- records -----------------------------------------------------------

    def records(self):
        """This build's contribution to the run's delivery/drop record.

        Keys are union-mergeable across partitions: every host, ToR, and
        core trunk port is owned by exactly one partition.  The core's
        ``forwarded`` count is the one summed quantity (each replica
        forwards the frames bound for its regions).
        """
        counters = {}
        for r, tor in sorted(self.tors.items()):
            counters["tor%d.forwarded" % r] = tor.forwarded.value
            counters["tor%d.dropped" % r] = tor.dropped.value
            counters["tor%d.hairpin_dropped" % r] = tor.hairpin_dropped.value
            for cls, dropped in sorted(self.uplinks[r].class_dropped.items()):
                counters["tor%d.uplink.class%d.dropped" % (r, cls)] = dropped
            for cls, dropped in sorted(
                    self.core_ports[r].class_dropped.items()):
                counters["core.region%d.class%d.dropped" % (r, cls)] = dropped
        for index, host in sorted(self.hosts.items()):
            counters["h%d.rx_frames" % index] = host.nic.rx_frames.value
            counters["h%d.rx_dropped" % index] = host.nic.rx_dropped.value
            counters["h%d.tx_frames" % index] = host.nic.tx_frames.value
        return {
            "deliveries": sorted(self.deliveries),
            "counters": counters,
            "core_forwarded": self.core.forwarded.value,
        }
