"""ARP: address resolution for the userspace network stack.

Kernel-bypassing datapaths cannot use the kernel's neighbor table (paper
§3: "the user has to provide its own userspace network and transport
protocols"), so the DPDK/XDP control path resolves IP-to-MAC bindings
here: a real ARP codec plus a resolver cache with request retry and
expiry, driven by the simulation clock.
"""

import struct

from repro.netstack.addresses import MacAddress, ip_to_int, int_to_ip

OP_REQUEST = 1
OP_REPLY = 2

_ARP = struct.Struct("!HHBBH6s4s6s4s")


class ArpPacket:
    """An Ethernet/IPv4 ARP packet (RFC 826)."""

    LENGTH = _ARP.size

    def __init__(self, op, sender_mac, sender_ip, target_mac, target_ip):
        if op not in (OP_REQUEST, OP_REPLY):
            raise ValueError("bad ARP op %r" % (op,))
        self.op = op
        self.sender_mac = sender_mac
        self.sender_ip = sender_ip
        self.target_mac = target_mac
        self.target_ip = target_ip

    @classmethod
    def request(cls, sender_mac, sender_ip, target_ip):
        return cls(OP_REQUEST, sender_mac, sender_ip, MacAddress(0), target_ip)

    @classmethod
    def reply(cls, sender_mac, sender_ip, target_mac, target_ip):
        return cls(OP_REPLY, sender_mac, sender_ip, target_mac, target_ip)

    def to_bytes(self):
        return _ARP.pack(
            1,              # hardware type: Ethernet
            0x0800,         # protocol type: IPv4
            6, 4,           # address lengths
            self.op,
            self.sender_mac.to_bytes(),
            struct.pack("!I", ip_to_int(self.sender_ip)),
            self.target_mac.to_bytes(),
            struct.pack("!I", ip_to_int(self.target_ip)),
        )

    @classmethod
    def from_bytes(cls, data):
        if len(data) < cls.LENGTH:
            raise ValueError("truncated ARP packet")
        htype, ptype, hlen, plen, op, smac, sip, tmac, tip = _ARP.unpack(
            bytes(data[: cls.LENGTH])
        )
        if htype != 1 or ptype != 0x0800 or hlen != 6 or plen != 4:
            raise ValueError("unsupported ARP packet")
        return cls(
            op,
            MacAddress.from_bytes(smac),
            int_to_ip(struct.unpack("!I", sip)[0]),
            MacAddress.from_bytes(tmac),
            int_to_ip(struct.unpack("!I", tip)[0]),
        )

    def __repr__(self):
        kind = "request" if self.op == OP_REQUEST else "reply"
        return "ArpPacket(%s, %s is-at %s, asking %s)" % (
            kind, self.sender_ip, self.sender_mac, self.target_ip,
        )


class ArpResolver:
    """A neighbor cache with request retry and entry expiry.

    The transmission of requests is delegated to a caller-supplied
    ``send_request(target_ip)`` callback so the resolver is reusable across
    datapaths; replies are fed in via :meth:`on_reply`.
    """

    def __init__(self, sim, own_mac, own_ip, send_request,
                 retry_ns=100_000, max_retries=3, ttl_ns=60_000_000_000):
        self.sim = sim
        self.own_mac = own_mac
        self.own_ip = own_ip
        self.send_request = send_request
        self.retry_ns = retry_ns
        self.max_retries = max_retries
        self.ttl_ns = ttl_ns
        self._cache = {}          # ip -> (mac, learned_at)
        self._pending = {}        # ip -> list of Signal waiters
        self.requests_sent = 0
        self.failures = 0

    def lookup(self, ip):
        """A cached MAC, or None (does not trigger resolution)."""
        entry = self._cache.get(ip)
        if entry is None:
            return None
        mac, learned_at = entry
        if self.sim.now - learned_at > self.ttl_ns:
            del self._cache[ip]
            return None
        return mac

    def resolve(self, ip):
        """Resolve ``ip`` (generator): returns the MAC or raises
        :class:`ArpTimeout` after the retry budget is spent."""
        from repro.simnet import Signal, Wait

        mac = self.lookup(ip)
        if mac is not None:
            return mac
        signal = Signal(self.sim)
        waiters = self._pending.get(ip)
        if waiters is None:
            self._pending[ip] = [signal]
            self._issue_request(ip, attempt=1)
        else:
            waiters.append(signal)
        mac = yield Wait(signal)
        if mac is None:
            raise ArpTimeout("no ARP reply from %s" % ip)
        return mac

    def on_reply(self, arp):
        """Feed a received ARP reply (or request — gratuitous learning)."""
        self._cache[arp.sender_ip] = (arp.sender_mac, self.sim.now)
        waiters = self._pending.pop(arp.sender_ip, [])
        for signal in waiters:
            if not signal.fired:
                signal.succeed(arp.sender_mac)

    def make_reply_for(self, arp):
        """If ``arp`` is a request for our address, build the reply."""
        if arp.op == OP_REQUEST and arp.target_ip == self.own_ip:
            return ArpPacket.reply(self.own_mac, self.own_ip, arp.sender_mac, arp.sender_ip)
        return None

    def _issue_request(self, ip, attempt):
        self.requests_sent += 1
        self.send_request(ip)
        self.sim.schedule(self.retry_ns, self._check_retry, ip, attempt)

    def _check_retry(self, ip, attempt):
        if ip not in self._pending:
            return  # resolved meanwhile
        if attempt >= self.max_retries:
            self.failures += 1
            waiters = self._pending.pop(ip, [])
            for signal in waiters:
                if not signal.fired:
                    signal.succeed(None)
        else:
            self._issue_request(ip, attempt + 1)


class ArpTimeout(RuntimeError):
    """Raised when resolution exhausts its retries."""
