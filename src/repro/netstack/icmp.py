"""ICMP echo (ping) for the userspace network stack's control path."""

import struct

from repro.netstack.checksum import internet_checksum

TYPE_ECHO_REQUEST = 8
TYPE_ECHO_REPLY = 0

_ICMP = struct.Struct("!BBHHH")


class IcmpEcho:
    """An ICMP echo request/reply (RFC 792)."""

    HEADER_LEN = _ICMP.size

    def __init__(self, kind, identifier, sequence, payload=b""):
        if kind not in (TYPE_ECHO_REQUEST, TYPE_ECHO_REPLY):
            raise ValueError("not an echo type: %r" % (kind,))
        if not 0 <= identifier <= 0xFFFF or not 0 <= sequence <= 0xFFFF:
            raise ValueError("identifier/sequence out of range")
        self.kind = kind
        self.identifier = identifier
        self.sequence = sequence
        self.payload = bytes(payload)

    @classmethod
    def request(cls, identifier, sequence, payload=b""):
        return cls(TYPE_ECHO_REQUEST, identifier, sequence, payload)

    def reply(self):
        """The echo reply answering this request (payload echoed back)."""
        if self.kind != TYPE_ECHO_REQUEST:
            raise ValueError("can only reply to a request")
        return IcmpEcho(TYPE_ECHO_REPLY, self.identifier, self.sequence, self.payload)

    def to_bytes(self):
        header = _ICMP.pack(self.kind, 0, 0, self.identifier, self.sequence)
        checksum = internet_checksum(header + self.payload)
        header = _ICMP.pack(self.kind, 0, checksum, self.identifier, self.sequence)
        return header + self.payload

    @classmethod
    def from_bytes(cls, data):
        if len(data) < cls.HEADER_LEN:
            raise ValueError("truncated ICMP packet")
        data = bytes(data)
        if internet_checksum(data) != 0:
            raise ValueError("ICMP checksum mismatch")
        kind, code, _checksum, identifier, sequence = _ICMP.unpack(data[: cls.HEADER_LEN])
        if code != 0:
            raise ValueError("unsupported ICMP code %d" % code)
        return cls(kind, identifier, sequence, data[cls.HEADER_LEN :])

    def __repr__(self):
        name = "request" if self.kind == TYPE_ECHO_REQUEST else "reply"
        return "IcmpEcho(%s id=%d seq=%d len=%d)" % (
            name, self.identifier, self.sequence, len(self.payload),
        )
