"""uTCP: a userspace reliable byte-stream transport (mTCP-lite).

Kernel-bypassing datapaths deliver raw datagrams; applications that need a
connection-oriented byte stream must bring their own transport (paper §3,
citing mTCP).  uTCP is that transport, implemented directly over a
datapath's send/receive queues:

* three-way handshake (SYN / SYN-ACK / ACK) and FIN teardown;
* cumulative ACKs with go-back-N retransmission and exponential backoff;
* receiver-advertised byte windows with a persist probe against the
  zero-window deadlock;
* in-order delivery with out-of-order segment buffering;
* MSS segmentation of arbitrarily sized writes.

Deliberate simplifications (documented, not hidden): no congestion control
(flow control only — edge links here are lossy, not congested), fixed
initial RTO, no TIME_WAIT, one connection per (stack, peer ip).
"""

import struct

from repro.core.errors import UtcpError
from repro.simnet import Counter, Get, Signal, Store, Timeout, Wait

#: seq, ack, advertised window (bytes), payload length, flags
_SEGMENT = struct.Struct("!IIIHB")
SEGMENT_HEADER_LEN = _SEGMENT.size

FLAG_SYN = 0x01
FLAG_ACK = 0x02
FLAG_FIN = 0x04

MSS = 1400                  # payload bytes per segment
DEFAULT_RECV_BUFFER = 64 * 1024
DEFAULT_RTO_NS = 200_000
MAX_RTO_NS = 5_000_000
PERSIST_NS = 400_000
#: SYN retransmissions before a connect aborts with UtcpError (the
#: backoff doubles per attempt, so the total wait is bounded too).
DEFAULT_MAX_SYN_RETRIES = 6

# connection states
CLOSED = "closed"
LISTEN = "listen"
SYN_SENT = "syn-sent"
SYN_RCVD = "syn-rcvd"
ESTABLISHED = "established"
FIN_WAIT = "fin-wait"


class Segment:
    """One uTCP segment (header + payload bytes)."""

    __slots__ = ("seq", "ack", "window", "flags", "payload")

    def __init__(self, seq, ack, window, flags, payload=b""):
        self.seq = seq
        self.ack = ack
        self.window = window
        self.flags = flags
        self.payload = payload

    def to_bytes(self):
        return _SEGMENT.pack(
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            min(self.window, 0xFFFFFFFF),
            len(self.payload),
            self.flags,
        ) + self.payload

    @classmethod
    def from_bytes(cls, data):
        if len(data) < SEGMENT_HEADER_LEN:
            raise ValueError("truncated uTCP segment")
        seq, ack, window, length, flags = _SEGMENT.unpack(bytes(data[:SEGMENT_HEADER_LEN]))
        payload = bytes(data[SEGMENT_HEADER_LEN : SEGMENT_HEADER_LEN + length])
        if len(payload) != length:
            raise ValueError("uTCP payload shorter than its length field")
        return cls(seq, ack, window, flags, payload)

    def describe(self):
        names = []
        if self.flags & FLAG_SYN:
            names.append("SYN")
        if self.flags & FLAG_ACK:
            names.append("ACK")
        if self.flags & FLAG_FIN:
            names.append("FIN")
        return "%s seq=%d ack=%d win=%d len=%d" % (
            "|".join(names) or "DATA", self.seq, self.ack, self.window, len(self.payload),
        )


class UtcpStack:
    """One uTCP endpoint bound to a datapath port on one host."""

    def __init__(self, datapath, port, recv_buffer=DEFAULT_RECV_BUFFER, rto_ns=DEFAULT_RTO_NS,
                 max_syn_retries=DEFAULT_MAX_SYN_RETRIES):
        self.datapath = datapath
        self.host = datapath.host
        self.sim = datapath.sim
        self.port = port
        self.recv_buffer = recv_buffer
        self.rto_ns = rto_ns
        self.max_syn_retries = max_syn_retries
        self.queue = datapath.open_port(port)
        self.connections = {}          # peer ip -> UtcpConnection
        self._accept_queue = Store(self.sim, name="utcp.accept")
        self._listening = False
        self.segments_sent = Counter("utcp.segments_sent")
        self.retransmits = Counter("utcp.retransmits")
        self.sim.process(self._rx_loop(), name="utcp.rx.%s" % self.host.name)

    # -- public API ----------------------------------------------------------

    def listen(self):
        """Start accepting incoming connections."""
        self._listening = True
        return self

    def accept(self):
        """Wait for the next established inbound connection (generator)."""
        connection = yield Get(self._accept_queue)
        return connection

    def connect(self, peer_ip):
        """Open a connection to ``peer_ip`` (generator)."""
        if peer_ip in self.connections:
            raise RuntimeError("already connected to %s" % peer_ip)
        connection = UtcpConnection(self, peer_ip, initiator=True)
        self.connections[peer_ip] = connection
        yield from connection._do_connect()
        return connection

    # -- internals -------------------------------------------------------------

    def _rx_loop(self):
        from repro.datapaths import DpdkDatapath

        while True:
            packets = yield from self.datapath.recv_burst(self.queue)
            for packet in packets:
                try:
                    segment = Segment.from_bytes(packet.payload_bytes())
                except ValueError:
                    DpdkDatapath.release_rx(packet)
                    continue
                self._demux(packet.src_ip, segment)
                DpdkDatapath.release_rx(packet)

    def _demux(self, peer_ip, segment):
        connection = self.connections.get(peer_ip)
        if connection is None:
            if self._listening and segment.flags & FLAG_SYN and not segment.flags & FLAG_ACK:
                connection = UtcpConnection(self, peer_ip, initiator=False)
                self.connections[peer_ip] = connection
            else:
                return  # no listener: drop (a full TCP would RST)
        connection._on_segment(segment)

    def _transmit(self, peer_ip, segment):
        """Fire-and-forget segment transmission (spawns a send process)."""
        from repro.netstack.packet import Packet

        packet = Packet(self.host.ip, peer_ip, self.port, self.port,
                        payload=segment.to_bytes())
        self.segments_sent.value += 1

        def op():
            yield from self.datapath.send(packet)

        self.sim.process(op(), name="utcp.tx")


class UtcpConnection:
    """One established (or in-progress) byte-stream connection."""

    def __init__(self, stack, peer_ip, initiator):
        self.stack = stack
        self.sim = stack.sim
        self.peer_ip = peer_ip
        self.state = CLOSED if initiator else LISTEN
        # send side
        self.snd_una = 0
        self.snd_nxt = 0
        self.snd_wnd = DEFAULT_RECV_BUFFER
        self._unacked = []            # [(seq, payload)] in order
        self._pending = bytearray()   # written, not yet segmented
        self._send_signal = None
        self._rto_handle = None
        self._persist_handle = None
        self._backoff = 1
        self._syn_retries = 0
        # receive side
        self.rcv_nxt = 0
        self._recv_buffer = bytearray()
        self._out_of_order = {}
        self._recv_signal = None
        self._fin_received = False
        self._fin_sent = False
        self._connected = Signal(self.sim)

    # -- connection setup ---------------------------------------------------------

    def _do_connect(self):
        self.state = SYN_SENT
        self._send_control(FLAG_SYN)
        self._arm_rto()
        yield Wait(self._connected)
        if self.state is not ESTABLISHED:
            raise UtcpError(
                "uTCP connect to %s failed after %d SYN retransmissions"
                % (self.peer_ip, self._syn_retries)
            )

    # -- public byte-stream API ------------------------------------------------------

    def send(self, data):
        """Queue ``data`` and transmit as the window allows (generator)."""
        if self.state not in (ESTABLISHED, SYN_RCVD, SYN_SENT):
            raise RuntimeError("send on %s connection" % self.state)
        self._pending.extend(data)
        yield from self._pump_send()

    def recv(self, max_bytes):
        """Receive up to ``max_bytes`` (generator); b"" signals EOF."""
        while not self._recv_buffer:
            if self._fin_received:
                return b""
            self._recv_signal = Signal(self.sim)
            yield Wait(self._recv_signal)
        take = min(max_bytes, len(self._recv_buffer))
        data = bytes(self._recv_buffer[:take])
        del self._recv_buffer[:take]
        if take:
            # window update: tell the peer space has freed up
            self._send_control(FLAG_ACK)
        return data

    def recv_exactly(self, nbytes):
        """Receive exactly ``nbytes`` or raise on EOF (generator)."""
        chunks = []
        remaining = nbytes
        while remaining:
            chunk = yield from self.recv(remaining)
            if not chunk:
                raise UtcpError("EOF after %d/%d bytes" % (nbytes - remaining, nbytes))
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def drain(self):
        """Wait until everything written has been acknowledged (generator)."""
        while self._pending or self._unacked:
            self._send_signal = Signal(self.sim)
            yield Wait(self._send_signal)

    def close(self):
        """Flush, send FIN, and wait for its acknowledgement (generator)."""
        yield from self.drain()
        if not self._fin_sent:
            self._fin_sent = True
            self._send_control(FLAG_FIN)
            self._arm_rto()
            self.state = FIN_WAIT
        while self._fin_sent and self._unacked_fin():
            self._send_signal = Signal(self.sim)
            yield Wait(self._send_signal)
        if self._fin_received:
            self.state = CLOSED

    # -- send machinery ------------------------------------------------------------------

    def _window_room(self):
        in_flight = self.snd_nxt - self.snd_una
        return max(0, self.snd_wnd - in_flight)

    def _pump_send(self):
        while self._pending:
            room = self._window_room()
            if room <= 0:
                self._arm_persist()
                self._send_signal = Signal(self.sim)
                yield Wait(self._send_signal)
                continue
            size = min(MSS, room, len(self._pending))
            payload = bytes(self._pending[:size])
            del self._pending[:size]
            segment = Segment(
                self.snd_nxt, self.rcv_nxt, self._advertised_window(),
                FLAG_ACK, payload,
            )
            self._unacked.append((self.snd_nxt, payload))
            self.snd_nxt += size
            self.stack._transmit(self.peer_ip, segment)
            self._arm_rto()

    def _unacked_fin(self):
        # FIN occupies one sequence number past the data
        return self.state is FIN_WAIT and self.snd_una < self.snd_nxt

    def _advertised_window(self):
        return max(0, self.stack.recv_buffer - len(self._recv_buffer))

    def _send_control(self, flags, seq=None):
        if self.state in (ESTABLISHED, FIN_WAIT):
            flags |= FLAG_ACK
        segment = Segment(
            self.snd_nxt if seq is None else seq,
            self.rcv_nxt,
            self._advertised_window(),
            flags,
        )
        # SYN/FIN consume a sequence number — but only on first transmission
        # (an explicit seq means a retransmission)
        if seq is None and flags & (FLAG_SYN | FLAG_FIN):
            self.snd_nxt += 1
        self.stack._transmit(self.peer_ip, segment)

    # -- timers --------------------------------------------------------------------------

    def _arm_rto(self):
        if self._rto_handle is not None:
            self._rto_handle.cancel()
        self._rto_handle = self.sim.schedule_cancellable(
            self.stack.rto_ns * self._backoff, self._on_rto
        )

    def _cancel_rto(self):
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None

    def _on_rto(self):
        self._rto_handle = None
        if self.state is SYN_SENT:
            self._syn_retries += 1
            if self._syn_retries > self.stack.max_syn_retries:
                # connect abort: unblock the waiter; _do_connect raises
                # the typed error (the peer is gone or the path is dead)
                self.state = CLOSED
                self.stack.connections.pop(self.peer_ip, None)
                if not self._connected.fired:
                    self._connected.succeed(False)
                return
            self.stack.retransmits.value += 1
            self._send_control(FLAG_SYN, seq=self.snd_una)
            self.snd_nxt = self.snd_una + 1
        elif self._unacked:
            # go-back-N: retransmit everything outstanding
            for seq, payload in self._unacked:
                self.stack.retransmits.value += 1
                self.stack._transmit(
                    self.peer_ip,
                    Segment(seq, self.rcv_nxt, self._advertised_window(), FLAG_ACK, payload),
                )
        elif self._unacked_fin():
            self.stack.retransmits.value += 1
            self._send_control(FLAG_FIN, seq=self.snd_nxt - 1)
        else:
            return
        self._backoff = min(self._backoff * 2, MAX_RTO_NS // self.stack.rto_ns or 1)
        self._arm_rto()

    def _arm_persist(self):
        if self._persist_handle is None:
            self._persist_handle = self.sim.schedule_cancellable(PERSIST_NS, self._on_persist)

    def _on_persist(self):
        self._persist_handle = None
        if self._window_room() <= 0 and (self._pending or self._unacked):
            # zero-window probe: a bare ACK soliciting a window update
            self._send_control(FLAG_ACK)
            self._arm_persist()

    # -- segment handling ---------------------------------------------------------------------

    def _on_segment(self, segment):
        if segment.flags & FLAG_SYN:
            self._on_syn(segment)
            return
        if segment.flags & FLAG_ACK:
            self._on_ack(segment)
        if segment.payload:
            self._on_data(segment)
        if segment.flags & FLAG_FIN:
            self._on_fin(segment)

    def _on_syn(self, segment):
        if segment.flags & FLAG_ACK:
            # SYN-ACK for our SYN
            if self.state is SYN_SENT:
                self.state = ESTABLISHED
                self.snd_una = self.snd_nxt
                self.rcv_nxt = segment.seq + 1
                self.snd_wnd = segment.window
                self._cancel_rto()
                self._backoff = 1
                self._send_control(FLAG_ACK)
                self._connected.succeed(True)
        else:
            # inbound SYN (new or retransmitted)
            self.rcv_nxt = segment.seq + 1
            self.snd_wnd = segment.window
            if self.state in (LISTEN, SYN_RCVD):
                first = self.state is LISTEN
                self.state = SYN_RCVD
                self._send_control(FLAG_SYN | FLAG_ACK, seq=0 if first else self.snd_una)
                if first:
                    self.snd_una = 0
                    self.snd_nxt = 1
                else:
                    self.snd_nxt = self.snd_una + 1

    def _on_ack(self, segment):
        if self.state is SYN_RCVD and segment.ack >= self.snd_nxt:
            self.state = ESTABLISHED
            self.snd_una = segment.ack
            self.stack._accept_queue.try_put(self)
        self.snd_wnd = segment.window
        if segment.ack > self.snd_una:
            self.snd_una = segment.ack
            self._unacked = [
                (seq, payload)
                for seq, payload in self._unacked
                if seq + len(payload) > self.snd_una
            ]
            self._backoff = 1
            if self._unacked or self.state is FIN_WAIT and self._unacked_fin():
                self._arm_rto()
            else:
                self._cancel_rto()
        self._wake_sender()

    def _on_data(self, segment):
        if segment.seq == self.rcv_nxt:
            self._recv_buffer.extend(segment.payload)
            self.rcv_nxt += len(segment.payload)
            while self.rcv_nxt in self._out_of_order:
                payload = self._out_of_order.pop(self.rcv_nxt)
                self._recv_buffer.extend(payload)
                self.rcv_nxt += len(payload)
            if self._recv_signal is not None and not self._recv_signal.fired:
                self._recv_signal.succeed()
                self._recv_signal = None
        elif segment.seq > self.rcv_nxt:
            self._out_of_order[segment.seq] = segment.payload
        # cumulative (possibly duplicate) ACK either way
        self._send_control(FLAG_ACK)

    def _on_fin(self, segment):
        if segment.seq == self.rcv_nxt:
            self.rcv_nxt += 1
            self._fin_received = True
            if self._recv_signal is not None and not self._recv_signal.fired:
                self._recv_signal.succeed()
                self._recv_signal = None
            self._send_control(FLAG_ACK)
            if self._fin_sent and not self._unacked_fin():
                self.state = CLOSED
        elif segment.seq < self.rcv_nxt:
            # retransmitted FIN: our acknowledgement was lost — resend it
            self._send_control(FLAG_ACK)

    def _wake_sender(self):
        if self._send_signal is not None and not self._send_signal.fired:
            self._send_signal.succeed()
            self._send_signal = None
