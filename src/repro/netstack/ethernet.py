"""Ethernet II frame header codec."""

import struct

from repro.netstack.addresses import MacAddress

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806


class EthernetHeader:
    """A 14-byte Ethernet II header."""

    __slots__ = ("dst", "src", "ethertype")

    LENGTH = 14

    def __init__(self, dst, src, ethertype=ETHERTYPE_IPV4):
        self.dst = dst
        self.src = src
        self.ethertype = ethertype

    def to_bytes(self):
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack("!H", self.ethertype)

    @classmethod
    def from_bytes(cls, data):
        if len(data) < cls.LENGTH:
            raise ValueError("truncated Ethernet header")
        dst = MacAddress.from_bytes(bytes(data[0:6]))
        src = MacAddress.from_bytes(bytes(data[6:12]))
        (ethertype,) = struct.unpack("!H", bytes(data[12:14]))
        return cls(dst, src, ethertype)

    def __eq__(self, other):
        return (
            isinstance(other, EthernetHeader)
            and self.dst == other.dst
            and self.src == other.src
            and self.ethertype == other.ethertype
        )

    def __repr__(self):
        return "EthernetHeader(dst=%s, src=%s, type=0x%04x)" % (
            self.dst,
            self.src,
            self.ethertype,
        )
