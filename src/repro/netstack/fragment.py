"""Application-level fragmentation and reassembly.

The LUNAR streaming framework sends multi-megabyte frames; those are split
into MTU-sized fragments here, each prefixed by a 16-byte fragment header,
and reassembled at the receiver.  Out-of-order arrival is tolerated; a
frame is delivered once all fragments are present.
"""

import struct

FRAGMENT_HEADER = struct.Struct("!IIII")  # frame_id, index, count, frame_len

FRAGMENT_HEADER_LEN = FRAGMENT_HEADER.size


class Fragmenter:
    """Splits byte payloads into fragments of at most ``max_fragment`` bytes
    of data each (header excluded)."""

    def __init__(self, max_fragment):
        if max_fragment < 1:
            raise ValueError("max_fragment must be >= 1")
        self.max_fragment = max_fragment
        self._next_frame_id = 0

    def fragment_count(self, frame_len):
        if frame_len == 0:
            return 1
        return (frame_len + self.max_fragment - 1) // self.max_fragment

    def fragment(self, frame):
        """Yield ``(header_bytes, data_view)`` pairs for one frame."""
        frame_id = self._next_frame_id
        self._next_frame_id += 1
        view = memoryview(frame)
        count = self.fragment_count(len(view))
        for index in range(count):
            start = index * self.max_fragment
            data = view[start : start + self.max_fragment]
            header = FRAGMENT_HEADER.pack(frame_id, index, count, len(view))
            yield header, data


class Reassembler:
    """Collects fragments and yields complete frames.

    Frames complete out of order are delivered as soon as their last
    fragment arrives; partially received frames are kept until complete or
    until :meth:`evict_stale` discards them.
    """

    def __init__(self, max_pending_frames=64):
        self.max_pending_frames = max_pending_frames
        self._pending = {}
        self.frames_completed = 0
        self.fragments_received = 0

    def push(self, datagram):
        """Feed one fragment datagram; return the completed frame or None."""
        if len(datagram) < FRAGMENT_HEADER_LEN:
            raise ValueError("datagram shorter than fragment header")
        frame_id, index, count, frame_len = FRAGMENT_HEADER.unpack_from(datagram)
        if index >= count:
            raise ValueError("fragment index %d out of range (count=%d)" % (index, count))
        data = bytes(datagram[FRAGMENT_HEADER_LEN:])
        self.fragments_received += 1
        state = self._pending.get(frame_id)
        if state is None:
            if len(self._pending) >= self.max_pending_frames:
                self._evict_oldest()
            state = _FrameState(count, frame_len)
            self._pending[frame_id] = state
        state.add(index, data)
        if state.complete:
            del self._pending[frame_id]
            self.frames_completed += 1
            return state.assemble()
        return None

    @property
    def pending_frames(self):
        return len(self._pending)

    def _evict_oldest(self):
        oldest = min(self._pending)
        del self._pending[oldest]


class _FrameState:
    __slots__ = ("count", "frame_len", "parts", "received")

    def __init__(self, count, frame_len):
        self.count = count
        self.frame_len = frame_len
        self.parts = [None] * count
        self.received = 0

    def add(self, index, data):
        if self.parts[index] is None:
            self.received += 1
        self.parts[index] = data

    @property
    def complete(self):
        return self.received == self.count

    def assemble(self):
        frame = b"".join(self.parts)
        if len(frame) != self.frame_len:
            raise ValueError(
                "reassembled frame is %d B, expected %d B" % (len(frame), self.frame_len)
            )
        return frame
