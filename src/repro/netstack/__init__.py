"""A minimal userspace network stack.

Kernel-bypassing datapaths (DPDK, XDP) must bring their own network and
transport protocols (paper §3).  This package is that stack: Ethernet, IPv4
and UDP header codecs with real byte-level serialization, the internet
checksum, MTU/jumbo-frame policy, and application-level fragmentation and
reassembly (used by the LUNAR streaming framework).

On the simulated hot path, header *construction* cost is accounted by the
``ustack_tx``/``ustack_rx`` stage costs; the codecs here exist so the stack
is a real, testable implementation rather than a constant.
"""

from repro.netstack.addresses import MacAddress, ip_to_int, int_to_ip
from repro.netstack.checksum import internet_checksum
from repro.netstack.ethernet import EthernetHeader
from repro.netstack.ipv4 import Ipv4Header
from repro.netstack.udp import UdpHeader
from repro.netstack.packet import (
    ETHERNET_OVERHEAD,
    IP_UDP_HEADER,
    PACKET_POOL,
    WIRE_OVERHEAD,
    Packet,
    PacketPool,
    wire_bytes,
)
from repro.netstack.frames import FramePolicy
from repro.netstack.fragment import Fragmenter, Reassembler
from repro.netstack.arp import ArpPacket, ArpResolver, ArpTimeout
from repro.netstack.icmp import IcmpEcho

__all__ = [
    "ArpPacket",
    "ArpResolver",
    "ArpTimeout",
    "ETHERNET_OVERHEAD",
    "EthernetHeader",
    "IcmpEcho",
    "FramePolicy",
    "Fragmenter",
    "IP_UDP_HEADER",
    "Ipv4Header",
    "MacAddress",
    "PACKET_POOL",
    "Packet",
    "PacketPool",
    "Reassembler",
    "UdpHeader",
    "WIRE_OVERHEAD",
    "internet_checksum",
    "int_to_ip",
    "ip_to_int",
    "wire_bytes",
]
