"""The internet checksum (RFC 1071) used by IPv4 and UDP headers."""


def internet_checksum(data):
    """One's-complement sum of 16-bit words, per RFC 1071.

    Odd-length input is zero-padded on the right, as the RFC specifies.
    """
    if len(data) % 2:
        data = bytes(data) + b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
