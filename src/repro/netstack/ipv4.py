"""IPv4 header codec (RFC 791), without options."""

import struct

from repro.netstack.addresses import int_to_ip, ip_to_int
from repro.netstack.checksum import internet_checksum

PROTO_UDP = 17


class Ipv4Header:
    """A 20-byte IPv4 header (IHL=5, no options)."""

    __slots__ = ("src", "dst", "total_length", "ttl", "protocol", "identification", "flags_fragment")

    LENGTH = 20

    def __init__(self, src, dst, total_length, ttl=64, protocol=PROTO_UDP, identification=0, flags_fragment=0):
        self.src = src
        self.dst = dst
        self.total_length = total_length
        self.ttl = ttl
        self.protocol = protocol
        self.identification = identification
        self.flags_fragment = flags_fragment

    def to_bytes(self):
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,            # version + IHL
            0,                        # DSCP/ECN
            self.total_length,
            self.identification,
            self.flags_fragment,
            self.ttl,
            self.protocol,
            0,                        # checksum placeholder
            struct.pack("!I", ip_to_int(self.src)),
            struct.pack("!I", ip_to_int(self.dst)),
        )
        checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def from_bytes(cls, data):
        if len(data) < cls.LENGTH:
            raise ValueError("truncated IPv4 header")
        data = bytes(data[: cls.LENGTH])
        if internet_checksum(data) != 0:
            raise ValueError("IPv4 header checksum mismatch")
        version_ihl, _dscp, total_length, ident, flags_frag, ttl, protocol, _cksum = struct.unpack(
            "!BBHHHBBH", data[:12]
        )
        if version_ihl >> 4 != 4:
            raise ValueError("not an IPv4 header")
        src = int_to_ip(struct.unpack("!I", data[12:16])[0])
        dst = int_to_ip(struct.unpack("!I", data[16:20])[0])
        return cls(src, dst, total_length, ttl=ttl, protocol=protocol, identification=ident, flags_fragment=flags_frag)

    def __repr__(self):
        return "Ipv4Header(%s -> %s, len=%d, proto=%d)" % (
            self.src,
            self.dst,
            self.total_length,
            self.protocol,
        )
