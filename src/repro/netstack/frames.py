"""MTU and jumbo-frame policy.

The INSANE prototype does not support UDP/IP fragmentation (it would break
zero-copy reconstruction, paper §8); payloads larger than the standard MTU
require jumbo frames, and anything larger than the jumbo MTU must be
fragmented at the application level (:mod:`repro.netstack.fragment`).
"""

from repro.netstack.packet import IP_UDP_HEADER


class FramePolicy:
    """Decides how a payload of a given size may be carried."""

    def __init__(self, mtu=1500, jumbo_mtu=9000, jumbo_enabled=True):
        if jumbo_mtu < mtu:
            raise ValueError("jumbo MTU smaller than standard MTU")
        self.mtu = mtu
        self.jumbo_mtu = jumbo_mtu
        self.jumbo_enabled = jumbo_enabled

    @property
    def max_payload(self):
        """Largest UDP payload a single frame can carry under this policy."""
        limit = self.jumbo_mtu if self.jumbo_enabled else self.mtu
        return limit - IP_UDP_HEADER

    def fits(self, payload_len):
        return payload_len <= self.max_payload

    def requires_jumbo(self, payload_len):
        """True when the payload fits only in a jumbo frame."""
        return payload_len > self.mtu - IP_UDP_HEADER

    def validate(self, payload_len):
        """Raise ``ValueError`` when a payload cannot be sent unfragmented."""
        if payload_len > self.max_payload:
            raise ValueError(
                "payload of %d B exceeds max frame payload %d B; use "
                "application-level fragmentation" % (payload_len, self.max_payload)
            )
        if self.requires_jumbo(payload_len) and not self.jumbo_enabled:
            raise ValueError(
                "payload of %d B requires jumbo frames, which are disabled" % payload_len
            )
