"""Address types and conversions used across the stack."""

import struct


def ip_to_int(address):
    """Convert dotted-quad ``"10.0.0.1"`` to its 32-bit integer form."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError("malformed IPv4 address: %r" % (address,))
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError("malformed IPv4 address: %r" % (address,))
        value = (value << 8) | octet
    return value


def int_to_ip(value):
    """Convert a 32-bit integer to dotted-quad notation."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError("IPv4 integer out of range: %r" % (value,))
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class MacAddress:
    """A 48-bit Ethernet address."""

    __slots__ = ("value",)

    BROADCAST_VALUE = 0xFFFFFFFFFFFF

    def __init__(self, value):
        if isinstance(value, str):
            value = int(value.replace(":", ""), 16)
        if not 0 <= value <= self.BROADCAST_VALUE:
            raise ValueError("MAC out of range: %r" % (value,))
        self.value = value

    @classmethod
    def from_index(cls, index):
        """Deterministic locally administered MAC for host ``index``."""
        return cls(0x020000000000 | index)

    @classmethod
    def broadcast(cls):
        return cls(cls.BROADCAST_VALUE)

    @property
    def is_broadcast(self):
        return self.value == self.BROADCAST_VALUE

    def to_bytes(self):
        return struct.pack("!Q", self.value)[2:]

    @classmethod
    def from_bytes(cls, data):
        if len(data) != 6:
            raise ValueError("MAC must be 6 bytes")
        return cls(int.from_bytes(data, "big"))

    def __eq__(self, other):
        return isinstance(other, MacAddress) and self.value == other.value

    def __hash__(self):
        return hash(self.value)

    def __str__(self):
        raw = "%012x" % self.value
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self):
        return "MacAddress(%s)" % self
