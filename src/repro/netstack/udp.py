"""UDP header codec (RFC 768)."""

import struct


class UdpHeader:
    """An 8-byte UDP header.

    The checksum field is computed over the payload with a zero
    pseudo-header for simplicity; receivers in this repository validate
    length, not checksum (NICs offload checksum in all modelled
    technologies).
    """

    __slots__ = ("src_port", "dst_port", "length")

    LENGTH = 8

    def __init__(self, src_port, dst_port, payload_length):
        for port in (src_port, dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError("UDP port out of range: %r" % (port,))
        self.src_port = src_port
        self.dst_port = dst_port
        self.length = self.LENGTH + payload_length

    def to_bytes(self):
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, 0)

    @classmethod
    def from_bytes(cls, data):
        if len(data) < cls.LENGTH:
            raise ValueError("truncated UDP header")
        src_port, dst_port, length, _checksum = struct.unpack("!HHHH", bytes(data[: cls.LENGTH]))
        if length < cls.LENGTH:
            raise ValueError("UDP length field too small")
        header = cls(src_port, dst_port, length - cls.LENGTH)
        return header

    @property
    def payload_length(self):
        return self.length - self.LENGTH

    def __repr__(self):
        return "UdpHeader(%d -> %d, payload=%d)" % (
            self.src_port,
            self.dst_port,
            self.payload_length,
        )
