"""The hot-path packet representation.

A :class:`Packet` is one UDP datagram in flight.  To keep zero-copy
semantics observable, ``payload`` may be a :class:`memoryview` into a
memory-pool slot; ``payload_len`` is authoritative for all cost and wire
computations so throughput runs may carry size-only packets.

Packets are *slotted records*: the metadata keys the per-packet hot path
reads and writes — the INSANE stream header (``insane``), the scheduler
flow label (``flow``), and the TX/RX pool buffers — are ``__slots__``
attributes, so lookups are attribute loads instead of dict operations and
no per-packet ``meta`` dict is allocated.  Cold paths (baselines, ARP,
obs/validate tooling) keep dict-style access through the :class:`PacketMeta`
shim returned by the ``meta`` property, which maps the hot keys onto the
slots and spills anything else into a lazily-created ``_extra`` dict.

A process-global :class:`PacketPool` free-list recycles records on the
runtime delivery path: ``acquire`` resets every field (including a fresh
global ``seq``, so pooled and freshly-allocated packets are byte-identical
in behaviour) and falls back to plain allocation when the pool is empty —
it never blocks.

``wire_bytes`` produces the real on-the-wire byte string (Ethernet + IPv4 +
UDP + payload) using the codecs in this package; it is exercised by tests
and by datapaths running with ``deep_processing`` enabled, while the default
simulation accounts header processing as a stage cost instead.
"""

from repro.netstack.addresses import MacAddress
from repro.netstack.ethernet import EthernetHeader
from repro.netstack.ipv4 import Ipv4Header
from repro.netstack.udp import UdpHeader

#: Ethernet header + FCS + preamble/SFD + inter-frame gap, in bytes.
ETHERNET_OVERHEAD = 14 + 4 + 8 + 12

#: IPv4 + UDP headers, in bytes.
IP_UDP_HEADER = Ipv4Header.LENGTH + UdpHeader.LENGTH

#: Total per-datagram wire overhead for a non-fragmented UDP packet.
WIRE_OVERHEAD = ETHERNET_OVERHEAD + IP_UDP_HEADER

_packet_counter = [0]


#: stride between per-partition sequence bases: partition ``i`` of a
#: partitioned run counts from ``i * PARTITION_SEQ_STRIDE``, so ids stay
#: globally unique across the whole logical run (2**48 packets per
#: partition is unreachable in practice).
PARTITION_SEQ_STRIDE = 1 << 48


def partition_seq_base(index):
    """The packet-sequence base of partition ``index`` of a logical run."""
    if index < 0:
        raise ValueError("partition index must be >= 0, got %r" % (index,))
    return index * PARTITION_SEQ_STRIDE


def reset_packet_counter(base=0):
    """Reset the global packet sequence counter (and drain the free-list).

    Packet ``seq`` numbers are process-global, so two experiment cells run
    back-to-back in one process would otherwise see different absolute
    sequence numbers than the same cells run in fresh worker processes.
    :func:`repro.simnet.cell.run_cell` calls this before every cell so a
    cell's observable behaviour is identical wherever it executes.  The
    packet pool is re-blanked for the same reason: a cell starts from
    factory-fresh records whether or not another cell ran first.

    ``base`` offsets the counter: the partitions of one space-partitioned
    run (:mod:`repro.dist`) each reset to :func:`partition_seq_base` of
    their partition index, so the ids minted by different partitions of
    the *same* logical run never collide.
    """
    _packet_counter[0] = base
    PACKET_POOL.reset()


#: metadata keys promoted to slots — everything the per-packet hot path
#: touches; anything else goes through the ``_extra`` spill dict
_HOT_KEYS = frozenset(("insane", "flow", "tx_buffer", "rx_buffer"))


class Packet:
    """One UDP datagram, possibly carrying a zero-copy payload view."""

    __slots__ = (
        "src_ip",
        "dst_ip",
        "src_port",
        "dst_port",
        "payload",
        "payload_len",
        "seq",
        "trace",
        # -- hot metadata, promoted from the former meta dict ------------
        "insane",      # (stream, channel, length) INSANE header tuple
        "flow",        # scheduler flow label
        "tx_buffer",   # TX pool slot, released when the frame departs
        "rx_buffer",   # RX mbuf (DPDK mempool staging)
        "_extra",      # lazy spill dict for cold keys (arp, dds_topic, ...)
    )

    def __init__(self, src_ip, dst_ip, src_port, dst_port, payload=None, payload_len=None, trace=None):
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = payload
        if payload_len is None:
            if payload is None:
                raise ValueError("either payload or payload_len is required")
            payload_len = len(payload)
        self.payload_len = payload_len
        _packet_counter[0] += 1
        self.seq = _packet_counter[0]
        self.trace = trace
        self.insane = None
        self.flow = None
        self.tx_buffer = None
        self.rx_buffer = None
        self._extra = None

    @property
    def meta(self):
        """Dict-compatible view over the slotted metadata (cold paths)."""
        return PacketMeta(self)

    @property
    def wire_size(self):
        """Bytes this datagram occupies on the wire, overhead included."""
        return self.payload_len + WIRE_OVERHEAD

    def payload_bytes(self):
        """Materialize the payload as ``bytes`` (copies a memoryview)."""
        if self.payload is None:
            return b"\x00" * self.payload_len
        return bytes(self.payload)

    def stamp(self, key, now):
        """Record a trace timestamp when tracing is enabled."""
        if self.trace is not None:
            self.trace[key] = now

    def __repr__(self):
        return "Packet(#%d %s:%d -> %s:%d, %dB)" % (
            self.seq,
            self.src_ip,
            self.src_port,
            self.dst_ip,
            self.dst_port,
            self.payload_len,
        )


class PacketMeta:
    """A dict-compatible shim over a packet's slotted metadata.

    Hot keys (``insane``, ``flow``, ``tx_buffer``, ``rx_buffer``) read and
    write the packet's slots; other keys spill into the lazily-created
    ``_extra`` dict.  ``None`` marks an absent hot key — no caller stores a
    literal ``None`` value.  Only cold paths (baselines, ARP, obs/validate
    tooling, legacy-stack code) go through this shim; hot paths use the
    attributes directly.
    """

    __slots__ = ("_packet",)

    def __init__(self, packet):
        self._packet = packet

    def get(self, key, default=None):
        if key in _HOT_KEYS:
            value = getattr(self._packet, key)
            return default if value is None else value
        extra = self._packet._extra
        if extra is None:
            return default
        return extra.get(key, default)

    def pop(self, key, default=None):
        if key in _HOT_KEYS:
            value = getattr(self._packet, key)
            if value is None:
                return default
            setattr(self._packet, key, None)
            return value
        extra = self._packet._extra
        if extra is None:
            return default
        return extra.pop(key, default)

    def __getitem__(self, key):
        if key in _HOT_KEYS:
            value = getattr(self._packet, key)
            if value is None:
                raise KeyError(key)
            return value
        extra = self._packet._extra
        if extra is None:
            raise KeyError(key)
        return extra[key]

    def __setitem__(self, key, value):
        if key in _HOT_KEYS:
            setattr(self._packet, key, value)
            return
        extra = self._packet._extra
        if extra is None:
            extra = self._packet._extra = {}
        extra[key] = value

    def __delitem__(self, key):
        if key in _HOT_KEYS:
            if getattr(self._packet, key) is None:
                raise KeyError(key)
            setattr(self._packet, key, None)
            return
        extra = self._packet._extra
        if extra is None:
            raise KeyError(key)
        del extra[key]

    def __contains__(self, key):
        if key in _HOT_KEYS:
            return getattr(self._packet, key) is not None
        extra = self._packet._extra
        return extra is not None and key in extra

    def setdefault(self, key, default=None):
        if key in self:
            return self[key]
        self[key] = default
        return default

    def keys(self):
        packet = self._packet
        out = [key for key in _HOT_KEYS if getattr(packet, key) is not None]
        if packet._extra is not None:
            out.extend(packet._extra.keys())
        return out

    def items(self):
        return [(key, self[key]) for key in self.keys()]

    def values(self):
        return [self[key] for key in self.keys()]

    def __iter__(self):
        return iter(self.keys())

    def __len__(self):
        return len(self.keys())

    def __bool__(self):
        return len(self.keys()) > 0

    def __repr__(self):
        return "PacketMeta(%r)" % (dict(self.items()),)


class PacketPool:
    """A preallocated free-list of :class:`Packet` records.

    ``acquire`` mirrors ``Packet.__init__`` exactly — including the global
    sequence-counter bump and the ``payload_len`` validation — so a pooled
    record is observationally identical to a fresh one.  Exhaustion falls
    back to plain allocation (never blocks, never fails); ``release``
    clears every reference-holding field before parking the record so no
    buffer, trace, or payload outlives its packet.
    """

    __slots__ = ("capacity", "preallocate", "_free")

    def __init__(self, capacity=1024, preallocate=256):
        self.capacity = capacity
        self.preallocate = preallocate
        self._free = []
        self.reset()

    def reset(self):
        """Drop all parked records and re-preallocate blanks."""
        new = Packet.__new__
        self._free[:] = [new(Packet) for _ in range(self.preallocate)]

    def acquire(self, src_ip, dst_ip, src_port, dst_port, payload=None,
                payload_len=None, trace=None):
        """A fully-reset packet record, pooled when possible."""
        free = self._free
        packet = free.pop() if free else Packet.__new__(Packet)
        packet.src_ip = src_ip
        packet.dst_ip = dst_ip
        packet.src_port = src_port
        packet.dst_port = dst_port
        packet.payload = payload
        if payload_len is None:
            if payload is None:
                raise ValueError("either payload or payload_len is required")
            payload_len = len(payload)
        packet.payload_len = payload_len
        _packet_counter[0] += 1
        packet.seq = _packet_counter[0]
        packet.trace = trace
        packet.insane = None
        packet.flow = None
        packet.tx_buffer = None
        packet.rx_buffer = None
        packet._extra = None
        return packet

    def release(self, packet):
        """Park ``packet`` for reuse (dropped when the pool is full).

        Only call this at a provably-bounded lifetime point — after the
        packet's last consumer is done with it (the runtime's dispatch
        path); protocols that retain packets (retransmit queues) must not
        release.
        """
        if len(self._free) < self.capacity:
            packet.payload = None
            packet.trace = None
            packet.insane = None
            packet.flow = None
            packet.tx_buffer = None
            packet.rx_buffer = None
            packet._extra = None
            self._free.append(packet)


#: the process-global free-list used by the runtime delivery path
PACKET_POOL = PacketPool()


def wire_bytes(packet, src_mac=None, dst_mac=None):
    """Serialize ``packet`` to its full on-the-wire byte string."""
    src_mac = src_mac or MacAddress.from_index(1)
    dst_mac = dst_mac or MacAddress.from_index(2)
    payload = packet.payload_bytes()
    udp = UdpHeader(packet.src_port, packet.dst_port, len(payload))
    ip = Ipv4Header(
        packet.src_ip,
        packet.dst_ip,
        Ipv4Header.LENGTH + UdpHeader.LENGTH + len(payload),
        identification=packet.seq & 0xFFFF,
    )
    eth = EthernetHeader(dst_mac, src_mac)
    return eth.to_bytes() + ip.to_bytes() + udp.to_bytes() + payload


def parse_wire_bytes(data):
    """Parse bytes produced by :func:`wire_bytes` back into a :class:`Packet`."""
    eth = EthernetHeader.from_bytes(data)
    offset = EthernetHeader.LENGTH
    ip = Ipv4Header.from_bytes(data[offset:])
    offset += Ipv4Header.LENGTH
    udp = UdpHeader.from_bytes(data[offset:])
    offset += UdpHeader.LENGTH
    payload = bytes(data[offset : offset + udp.payload_length])
    if len(payload) != udp.payload_length:
        raise ValueError("truncated UDP payload")
    return Packet(ip.src, ip.dst, udp.src_port, udp.dst_port, payload=payload), eth
