"""The hot-path packet representation.

A :class:`Packet` is one UDP datagram in flight.  To keep zero-copy
semantics observable, ``payload`` may be a :class:`memoryview` into a
memory-pool slot; ``payload_len`` is authoritative for all cost and wire
computations so throughput runs may carry size-only packets.

``wire_bytes`` produces the real on-the-wire byte string (Ethernet + IPv4 +
UDP + payload) using the codecs in this package; it is exercised by tests
and by datapaths running with ``deep_processing`` enabled, while the default
simulation accounts header processing as a stage cost instead.
"""

from repro.netstack.addresses import MacAddress
from repro.netstack.ethernet import EthernetHeader
from repro.netstack.ipv4 import Ipv4Header
from repro.netstack.udp import UdpHeader

#: Ethernet header + FCS + preamble/SFD + inter-frame gap, in bytes.
ETHERNET_OVERHEAD = 14 + 4 + 8 + 12

#: IPv4 + UDP headers, in bytes.
IP_UDP_HEADER = Ipv4Header.LENGTH + UdpHeader.LENGTH

#: Total per-datagram wire overhead for a non-fragmented UDP packet.
WIRE_OVERHEAD = ETHERNET_OVERHEAD + IP_UDP_HEADER

_packet_counter = [0]


def reset_packet_counter():
    """Reset the global packet sequence counter to zero.

    Packet ``seq`` numbers are process-global, so two experiment cells run
    back-to-back in one process would otherwise see different absolute
    sequence numbers than the same cells run in fresh worker processes.
    :func:`repro.simnet.cell.run_cell` calls this before every cell so a
    cell's observable behaviour is identical wherever it executes.
    """
    _packet_counter[0] = 0


class Packet:
    """One UDP datagram, possibly carrying a zero-copy payload view."""

    __slots__ = (
        "src_ip",
        "dst_ip",
        "src_port",
        "dst_port",
        "payload",
        "payload_len",
        "seq",
        "trace",
        "meta",
    )

    def __init__(self, src_ip, dst_ip, src_port, dst_port, payload=None, payload_len=None, trace=None):
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = payload
        if payload_len is None:
            if payload is None:
                raise ValueError("either payload or payload_len is required")
            payload_len = len(payload)
        self.payload_len = payload_len
        _packet_counter[0] += 1
        self.seq = _packet_counter[0]
        self.trace = trace
        self.meta = {}

    @property
    def wire_size(self):
        """Bytes this datagram occupies on the wire, overhead included."""
        return self.payload_len + WIRE_OVERHEAD

    def payload_bytes(self):
        """Materialize the payload as ``bytes`` (copies a memoryview)."""
        if self.payload is None:
            return b"\x00" * self.payload_len
        return bytes(self.payload)

    def stamp(self, key, now):
        """Record a trace timestamp when tracing is enabled."""
        if self.trace is not None:
            self.trace[key] = now

    def __repr__(self):
        return "Packet(#%d %s:%d -> %s:%d, %dB)" % (
            self.seq,
            self.src_ip,
            self.src_port,
            self.dst_ip,
            self.dst_port,
            self.payload_len,
        )


def wire_bytes(packet, src_mac=None, dst_mac=None):
    """Serialize ``packet`` to its full on-the-wire byte string."""
    src_mac = src_mac or MacAddress.from_index(1)
    dst_mac = dst_mac or MacAddress.from_index(2)
    payload = packet.payload_bytes()
    udp = UdpHeader(packet.src_port, packet.dst_port, len(payload))
    ip = Ipv4Header(
        packet.src_ip,
        packet.dst_ip,
        Ipv4Header.LENGTH + UdpHeader.LENGTH + len(payload),
        identification=packet.seq & 0xFFFF,
    )
    eth = EthernetHeader(dst_mac, src_mac)
    return eth.to_bytes() + ip.to_bytes() + udp.to_bytes() + payload


def parse_wire_bytes(data):
    """Parse bytes produced by :func:`wire_bytes` back into a :class:`Packet`."""
    eth = EthernetHeader.from_bytes(data)
    offset = EthernetHeader.LENGTH
    ip = Ipv4Header.from_bytes(data[offset:])
    offset += Ipv4Header.LENGTH
    udp = UdpHeader.from_bytes(data[offset:])
    offset += UdpHeader.LENGTH
    payload = bytes(data[offset : offset + udp.payload_length])
    if len(payload) != udp.payload_length:
        raise ValueError("truncated UDP payload")
    return Packet(ip.src, ip.dst, udp.src_port, udp.dst_port, payload=payload), eth
