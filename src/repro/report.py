"""The unified result object: every runner hands back a :class:`RunReport`.

PRs 2-5 grew three result surfaces — figure sweeps, validation fan-outs,
and now scenarios — each returning its own ad-hoc dict shape.  This module
replaces them with one frozen, schema-versioned dataclass family so every
digest comparison in the repo (sweep merges, the golden corpus tooling,
scenario suites) works over the *same* canonical JSON:

* ``data`` is the digest-compared payload — a pure function of the run's
  inputs (seeds, parameters, code), never of wall-clock time or host
  identity;
* ``meta`` is the non-compared provenance block — worker counts, cache
  hit rates, source paths, timestamps — free to vary between
  bit-identical runs;
* ``schema`` versions the report shape itself, so a stored report can be
  rejected loudly when the layout changes instead of silently
  mis-comparing.

``digest()`` hashes the canonical body (schema + kind + data, sorted
keys, fixed separators) and excludes ``meta`` by construction, which is
what lets a cached single-worker report compare equal to a fresh
16-worker one.
"""

import json
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Mapping

#: Version of the report layout.  Bump when the body shape changes; the
#: loader refuses newer schemas instead of guessing.
RUN_REPORT_SCHEMA = 1


def canonical_json(value, indent=None):
    """Digest-stable JSON: sorted keys, fixed separators, no NaN."""
    separators = (",", ": ") if indent else (",", ":")
    return json.dumps(value, sort_keys=True, separators=separators,
                      indent=indent, allow_nan=False)


@dataclass(frozen=True)
class RunReport:
    """One run's canonical result: ``(kind, data)`` plus provenance.

    ``kind`` names the producing runner (``"bench.sweep"``,
    ``"validate.fuzz"``, ``"scenario.run"``, ``"scenario.suite"``, ...);
    equality and :meth:`digest` cover ``schema``, ``kind`` and ``data``
    only — ``meta`` is deliberately excluded from comparison.
    """

    kind: str
    data: Mapping
    meta: Mapping = field(default_factory=dict, compare=False)
    schema: int = RUN_REPORT_SCHEMA

    def body(self):
        """The digest-compared part of the report, as a plain dict."""
        return {"schema": self.schema, "kind": self.kind,
                "data": self.data}

    def to_dict(self, with_meta=True):
        """The full report as a plain JSON-able dict."""
        document = self.body()
        if with_meta:
            document["meta"] = dict(self.meta)
        return document

    def to_json(self, indent=None, with_meta=True):
        """Canonical JSON; ``with_meta=False`` yields the digest input."""
        return canonical_json(self.to_dict(with_meta=with_meta),
                              indent=indent)

    def digest(self):
        """sha256 over the canonical body — ``meta`` never moves it."""
        return sha256(self.to_json(with_meta=False).encode()).hexdigest()

    @classmethod
    def from_dict(cls, document):
        """Rebuild a report from :meth:`to_dict` output (loudly versioned)."""
        if not isinstance(document, dict):
            raise ValueError("a RunReport document must be a dict, got %s"
                             % type(document).__name__)
        missing = {"schema", "kind", "data"} - set(document)
        if missing:
            raise ValueError("RunReport document missing %s"
                             % sorted(missing))
        schema = document["schema"]
        if schema > RUN_REPORT_SCHEMA:
            raise ValueError(
                "RunReport schema %r is newer than this code understands "
                "(max %d); refusing to guess" % (schema, RUN_REPORT_SCHEMA)
            )
        return cls(kind=document["kind"], data=document["data"],
                   meta=document.get("meta", {}), schema=schema)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))


def write_reports(path, reports):
    """Append ``reports`` to a JSON file holding a list of report dicts.

    Successive invocations accumulate (the historical ``--json`` contract
    of the bench CLI); a corrupt or non-list file is replaced rather than
    crashed on.
    """
    import os

    stored = []
    if os.path.exists(path):
        with open(path) as handle:
            try:
                stored = json.load(handle)
            except ValueError:
                stored = []
        if not isinstance(stored, list):
            stored = [stored]
    for report in reports:
        stored.append(report.to_dict() if isinstance(report, RunReport)
                      else report)
    with open(path, "w") as handle:
        json.dump(stored, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
