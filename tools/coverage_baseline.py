#!/usr/bin/env python
"""Measure tier-1 line coverage of ``src/repro`` with the stdlib only.

CI enforces the coverage gate with pytest-cov (installed in the workflow);
this tool exists so the baseline behind ``[tool.coverage.report]
fail_under`` in pyproject.toml can be re-measured locally without
installing anything: it runs the default pytest selection under the
stdlib ``trace`` module and reports per-package and total line coverage.

Usage::

    PYTHONPATH=src python tools/coverage_baseline.py [pytest args...]

Numbers are a close approximation of coverage.py's (executable lines are
taken from compiled code objects), typically within a point or two.  It
is ~20x slower than the plain suite — a baseline tool, not a CI gate.
"""

import os
import sys
import trace
import types


REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")


def executable_lines(path):
    """Line numbers bytecode can actually hit, per the compiled module."""
    with open(path) as handle:
        source = handle.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        lines.update(line for _, _, line in code.co_lines() if line)
        stack.extend(
            const for const in code.co_consts
            if isinstance(const, types.CodeType)
        )
    return lines


def repro_sources():
    for root, _dirs, files in os.walk(os.path.join(SRC, "repro")):
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)


def main(argv):
    import pytest

    # no ignoredirs: trace._Ignore caches verdicts by bare module basename,
    # so ignoring site-packages would also silently ignore any repro module
    # sharing a name with one there (capture.py, every __init__.py, ...).
    # We trace everything and filter to src/repro during aggregation.
    tracer = trace.Trace(count=1, trace=0)
    exit_code = []
    tracer.runfunc(
        lambda: exit_code.append(pytest.main(["-q"] + list(argv)))
    )
    counts = tracer.results().counts
    hit_by_file = {}
    for (filename, line), _count in counts.items():
        hit_by_file.setdefault(os.path.abspath(filename), set()).add(line)

    total_hit = total_lines = 0
    by_package = {}
    print("%-38s %9s %9s %8s" % ("module", "lines", "covered", "percent"))
    for path in repro_sources():
        lines = executable_lines(path)
        if not lines:
            continue
        hit = hit_by_file.get(path, set()) & lines
        relative = os.path.relpath(path, SRC)
        package = relative.split(os.sep)[1]
        package_hit, package_lines = by_package.get(package, (0, 0))
        by_package[package] = (package_hit + len(hit), package_lines + len(lines))
        total_hit += len(hit)
        total_lines += len(lines)
    for package in sorted(by_package):
        hit, lines = by_package[package]
        print("repro/%-32s %9d %9d %7.1f%%"
              % (package, lines, hit, 100.0 * hit / lines))
    print("%-38s %9d %9d %7.1f%%"
          % ("TOTAL", total_lines, total_hit,
             100.0 * total_hit / max(total_lines, 1)))
    return exit_code[0] if exit_code else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
