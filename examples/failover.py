"""Fault injection and QoS-aware failover (``repro.faults``).

A publisher streams sensor readings over the fast (DPDK) datapath while a
fault schedule crashes that datapath mid-run.  The runtime's health
monitor detects the failure, re-maps the stream onto the best surviving
datapath its QoS policy allows (XDP here), migrates the tokens parked in
the dead binding's rings, and traffic continues — degraded, not dead.
Emit outcomes flip from ``sent`` to ``degraded`` so the application can
see the fallback happened.

Run with::

    python examples/failover.py [--fail-at-us 500]
"""

import argparse

from repro.core import EmitOutcome, QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.faults import FaultSchedule
from repro.hw import Testbed
from repro.simnet import Timeout


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--messages", type=int, default=40)
    parser.add_argument("--interval-us", type=float, default=25.0)
    parser.add_argument("--fail-at-us", type=float, default=500.0)
    args = parser.parse_args()

    testbed = Testbed.local(seed=7)
    sim = testbed.sim
    with InsaneDeployment(testbed) as deployment, \
            Session(deployment.runtime(0), "sensor") as pub, \
            Session(deployment.runtime(1), "monitor") as sub:
        pub_stream = pub.create_stream(QosPolicy.fast(), name="telemetry")
        sub_stream = sub.create_stream(QosPolicy.fast(), name="telemetry")
        source = pub.create_source(pub_stream, channel=1)
        sink = sub.create_sink(sub_stream, channel=1)
        print("stream mapped to datapath: %s" % pub_stream.datapath)

        emit_ids = []
        delivered = []

        def publisher():
            for index in range(args.messages):
                buffer = yield from pub.get_buffer_wait(source, 64)
                buffer.write(b"reading-%04d" % index)
                emit_ids.append((yield from pub.emit_data(source, buffer)))
                yield Timeout(args.interval_us * 1000.0)

        def subscriber():
            while True:
                delivery = yield from sub.consume_data(sink)
                delivered.append(sim.now)
                sub.release_buffer(sink, delivery)

        sim.process(publisher(), name="sensor")
        sim.process(subscriber(), name="monitor")

        # crash the DPDK datapath on the publisher's host mid-stream
        schedule = FaultSchedule().datapath_failure(
            at=args.fail_at_us * 1000.0, host=0,
            datapath=pub_stream.datapath, reason="driver crash (injected)",
        )
        schedule.apply(testbed, deployment)
        sim.run()

        runtime = deployment.runtime(0)
        event = runtime.health.events[0]
        outcomes = [pub.check_emit_outcome(source, e) for e in emit_ids]
        print("datapath failed at   : %.0f us (%s)"
              % (event.failed_at / 1000.0, event.reason))
        print("detected after       : %.0f us"
              % (event.detection_latency_ns / 1000.0))
        print("stream re-mapped     : %s -> %s"
              % (event.remapped[0][2], event.remapped[0][3]))
        print("tokens migrated      : %d" % event.migrated)
        print("delivered            : %d / %d"
              % (len(delivered), len(emit_ids)))
        print("emit outcomes        : %d sent, %d degraded"
              % (outcomes.count(EmitOutcome.SENT),
                 outcomes.count(EmitOutcome.DEGRADED)))
        for warning in runtime.warnings:
            print("runtime warning      : %s" % warning)


if __name__ == "__main__":
    main()
