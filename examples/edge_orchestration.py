"""Network Acceleration as a Service: orchestrating containers (paper §8).

A four-node edge cloud, heterogeneous on purpose: two accelerated nodes,
one RDMA rack, one plain VM host.  An orchestrator places containerized
services by their QoS needs, traffic flows, then a node is drained for
maintenance and its containers live-migrate — INSANE re-binds their
streams to whatever the destination offers.

Run with::

    python examples/edge_orchestration.py
"""

from repro.cloud import Container, ContainerSpec, EdgeOrchestrator
from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import LOCAL_TESTBED, Testbed
from repro.simnet import Timeout


def make_edge():
    bed = Testbed(LOCAL_TESTBED, hosts=4, seed=13)
    deployment = InsaneDeployment(bed)
    # node3 is a commodity VM: no acceleration at all
    plain = LOCAL_TESTBED.replace(dpdk_capable=False, xdp_capable=False)
    bed.hosts[3].profile = plain
    deployment.runtimes["host3"].profile = plain
    # node0 is the RDMA rack
    rdma = LOCAL_TESTBED.replace(rdma_nic=True)
    bed.hosts[0].profile = rdma
    deployment.runtimes["host0"].profile = rdma
    return bed, deployment


def analytics_entrypoint(container, session, stream):
    """Consumes the sensor feed wherever the container happens to run."""
    container.samples = getattr(container, "samples", 0)

    def count(delivery):
        container.samples += 1

    session.create_sink(stream, channel=1, callback=count)
    return None


def main():
    bed, deployment = make_edge()
    sim = bed.sim
    orchestrator = EdgeOrchestrator(deployment)

    fast_spec = ContainerSpec(
        "analytics", analytics_entrypoint,
        policy=QosPolicy.fast(), stream_name="sensors",
        requires_acceleration=True, slot_quota=256,
    )
    best_effort_spec = ContainerSpec(
        "dashboard", analytics_entrypoint,
        policy=QosPolicy.slow(), stream_name="sensors",
    )

    analytics = Container(fast_spec)
    dashboards = [Container(best_effort_spec) for _ in range(2)]
    orchestrator.deploy(analytics)
    for dashboard in dashboards:
        orchestrator.deploy(dashboard)

    print("initial placements:")
    for node, names in sorted(orchestrator.stats().items()):
        print("  %-6s %s" % (node, names or "-"))
    print("analytics bound to: %s on %s"
          % (analytics.datapath, analytics.node.host.name))

    producer = Session(deployment.runtimes["host1"], "sensor-gw")
    stream = producer.create_stream(QosPolicy.fast(), name="sensors")
    source = producer.create_source(stream, channel=1)

    def publish(count):
        for _ in range(count):
            buffer = yield from producer.get_buffer_wait(source, 128)
            yield from producer.emit_data(source, buffer, length=128)
            yield Timeout(20_000)

    def scenario():
        yield from publish(40)
        # drain the analytics node for maintenance
        victim = analytics.node
        target = next(
            runtime for runtime in orchestrator.nodes()
            if runtime is not victim and orchestrator.accelerated(runtime)
        )
        downtime = orchestrator.migrate(analytics, target)
        print("\nmaintenance: migrated %s -> %s (downtime %.1f us, now on %s)"
              % (analytics.container_id, target.host.name, downtime / 1e3,
                 analytics.datapath))
        yield from publish(40)

    sim.process(scenario())
    sim.run()

    print("\nafter migration:")
    for node, names in sorted(orchestrator.stats().items()):
        print("  %-6s %s" % (node, names or "-"))
    print("analytics samples consumed : %d / 80 published" % analytics.samples)
    for index, dashboard in enumerate(dashboards):
        print("dashboard%d samples        : %d" % (index, dashboard.samples))


if __name__ == "__main__":
    main()
