"""Building reliability ON TOP of INSANE (paper §5.2's design stance).

INSANE is best-effort by design: "developers are responsible to design
[fault-tolerance] mechanisms as part of their own custom logic".  This
example does exactly that — it transfers a blob across a lossy edge WAN
link using the sliding-window ARQ from ``repro.apps.reliable``, while a
wire tap shows what actually crossed the cable.

Run with::

    python examples/reliable_transfer.py [--loss 0.15]
"""

import argparse

from repro.apps.reliable import ReliableReceiver, ReliableSender
from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from repro.trace import WireTap


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loss", type=float, default=0.15,
                        help="frame loss probability on the link")
    parser.add_argument("--chunks", type=int, default=150)
    parser.add_argument("--chunk-size", type=int, default=1024)
    args = parser.parse_args()

    testbed = Testbed.local(seed=99)
    for link in testbed.links:
        link.loss_rate = args.loss
    tap = WireTap().attach_all(testbed)
    sim = testbed.sim

    blob = bytes((i * 31) % 256 for i in range(args.chunks * args.chunk_size))
    chunks = [
        blob[i : i + args.chunk_size] for i in range(0, len(blob), args.chunk_size)
    ]
    received = []

    with InsaneDeployment(testbed) as deployment, \
            Session(deployment.runtime(0), "uploader") as tx, \
            Session(deployment.runtime(1), "downloader") as rx:
        tx_stream = tx.create_stream(QosPolicy.fast(), name="transfer")
        rx_stream = rx.create_stream(QosPolicy.fast(), name="transfer")

        sender = ReliableSender(tx, tx_stream, channel=10, window=32)
        receiver = ReliableReceiver(rx, rx_stream, channel=10,
                                    deliver=received.append)

        def uploader():
            for chunk in chunks:
                yield from sender.send(chunk)
            yield from sender.drain()
            sender.close()

        sim.process(uploader())
        sim.run()

    assert b"".join(received) == blob, "transfer corrupted!"
    lost = sum(link.lost_frames.value for link in testbed.links)
    data_frames = len(tap.filter(port=47001, dropped=False))
    print("transferred  : %d chunks (%.0f KB), bit-exact" % (len(chunks), len(blob) / 1024))
    print("link loss    : %.0f%% -> %d frames lost on the wire" % (args.loss * 100, lost))
    print("ARQ          : %d retransmissions, %d duplicates suppressed"
          % (sender.retransmissions.value, receiver.duplicates.value))
    print("wire         : %d data/ack frames delivered, %.1f KB total"
          % (data_frames, tap.bytes_on_wire() / 1024))
    print("elapsed      : %.2f ms of simulated time" % (sim.now / 1e6))
    print("\nINSANE stayed best-effort; reliability lived entirely in the "
          "application layer.")


if __name__ == "__main__":
    main()
