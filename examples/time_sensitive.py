"""Time-sensitive streams: the TSN scheduling QoS under bulk interference.

A motion-control loop needs deterministic command delivery while a camera
uplink floods the same sender.  Marking the control stream time-sensitive
switches its packets to the IEEE 802.1Qbv time-aware scheduler (paper
§5.2/§5.3), protecting them from the bulk traffic.

Run with::

    python examples/time_sensitive.py
"""

import struct

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from repro.simnet import Tally, Timeout


def run(time_sensitive, commands=120, period_ns=25_000, seed=5):
    testbed = Testbed.local(hosts=3, seed=seed)
    sim = testbed.sim
    deployment = InsaneDeployment(testbed)
    control_tx = Session(deployment.runtime(0), "controller")
    camera_tx = Session(deployment.runtime(0), "camera")
    actuator = Session(deployment.runtime(1), "actuator")
    storage = Session(deployment.runtime(2), "storage")

    control_policy = QosPolicy.fast(time_sensitive=time_sensitive)
    bulk_policy = QosPolicy.fast()
    control_out = control_tx.create_stream(control_policy, name="control")
    control_in = actuator.create_stream(control_policy, name="control")
    camera_out = camera_tx.create_stream(bulk_policy, name="camera")
    camera_in = storage.create_stream(bulk_policy, name="camera")

    command_source = control_tx.create_source(control_out, channel=1)
    command_sink = actuator.create_sink(control_in, channel=1)
    frame_source = camera_tx.create_source(camera_out, channel=2)
    storage.create_sink(camera_in, channel=2, callback=lambda d: None)
    latencies = Tally("command-latency")

    def camera():
        while True:
            buffer = yield from camera_tx.get_buffer_wait(frame_source, 8192)
            yield from camera_tx.emit_data(frame_source, buffer, length=8192)

    def controller():
        for _ in range(commands):
            buffer = yield from control_tx.get_buffer_wait(command_source, 64)
            buffer.write(struct.pack("!Q", int(sim.now)))
            yield from control_tx.emit_data(command_source, buffer, length=64)
            yield Timeout(period_ns)

    def actuator_proc():
        for _ in range(commands):
            delivery = yield from actuator.consume_data(command_sink)
            (sent,) = struct.unpack("!Q", bytes(delivery.buffer.view[:8]))
            latencies.record(sim.now - sent)
            actuator.release_buffer(command_sink, delivery)

    sim.process(camera(), name="camera")
    sim.process(actuator_proc(), name="actuator")
    sim.process(controller(), name="controller")
    sim.run(until=commands * period_ns * 3)
    return latencies


def main():
    fifo = run(time_sensitive=False)
    tsn = run(time_sensitive=True)
    print("command delivery latency under a camera-uplink flood:\n")
    print("%-22s %10s %10s %10s" % ("scheduler", "mean (us)", "p99 (us)", "max (us)"))
    for label, tally in (("FIFO (default)", fifo), ("802.1Qbv (TSN QoS)", tsn)):
        print("%-22s %10.2f %10.2f %10.2f"
              % (label, tally.mean / 1e3, tally.percentile(99) / 1e3, tally.maximum / 1e3))
    improvement = fifo.percentile(99) / tsn.percentile(99)
    print("\nthe time-sensitive QoS cuts tail latency by %.1fx without any "
          "change to the\napplication's send/receive code." % improvement)


if __name__ == "__main__":
    main()
