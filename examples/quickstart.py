"""Quickstart: send one message through INSANE in ~40 lines.

Builds the paper's local edge testbed (two hosts, 100 Gbps back to back),
starts an INSANE runtime on each, and sends one zero-copy message from a
source on host0 to a sink on host1 over the *fast* (DPDK) datapath.

Every INSANE handle (deployment, session, stream, source, sink) is a
context manager; ``with`` blocks close them in order and reclaim any
leaked buffer slots, so resource hygiene is automatic.

Run with::

    python examples/quickstart.py
"""

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed


def main():
    # the paper's local testbed: two hosts cabled back to back
    testbed = Testbed.local(seed=42)
    with InsaneDeployment(testbed) as deployment, \
            Session(deployment.runtime(0), "producer") as producer, \
            Session(deployment.runtime(1), "consumer") as consumer:

        # a stream carries the QoS; INSANE picks the datapath (here: DPDK).
        # QosPolicy.fast() is shorthand for the validating builder:
        #   QosPolicy.build().accelerated().done()
        policy = QosPolicy.fast()
        out_stream = producer.create_stream(policy, name="quickstart")
        in_stream = consumer.create_stream(policy, name="quickstart")
        source = producer.create_source(out_stream, channel=7)
        sink = consumer.create_sink(in_stream, channel=7)
        print("stream mapped to datapath: %s" % out_stream.datapath)

        def produce():
            buffer = producer.get_buffer(source, 64)          # borrow a slot
            buffer.write(b"hello from the INSANE middleware!")
            yield from producer.emit_data(source, buffer)     # zero-copy emit

        def consume():
            delivery = yield from consumer.consume_data(sink)  # blocking consume
            message = bytes(delivery.payload())
            print("received %r after %.2f us" % (message, testbed.sim.now / 1000))
            consumer.release_buffer(sink, delivery)            # return the slot

        testbed.sim.process(produce())
        testbed.sim.process(consume())
        testbed.sim.run()
    # the with-block closed both sessions and shut every runtime down


if __name__ == "__main__":
    main()
