"""LUNAR MoM example: factory telemetry pub/sub across three edge nodes.

The scenario from the paper's introduction: an industrial edge cloud where
machine controllers publish telemetry and an analytics node plus a local
dashboard subscribe.  LUNAR MoM (paper §7.1) runs on INSANE; the publishers
and subscribers never name a network technology — only a QoS mode.

Run with::

    python examples/pubsub_mom.py [--mode fast|slow]
"""

import argparse

from repro.apps.lunar_mom import LunarMom
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed
from repro.simnet import Timeout


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("fast", "slow"), default="fast")
    parser.add_argument("--samples", type=int, default=50)
    args = parser.parse_args()

    # three edge nodes behind one top-of-rack switch
    testbed = Testbed.local(hosts=3, seed=7)
    sim = testbed.sim
    deployment = InsaneDeployment(testbed)

    controller = LunarMom(deployment.runtime(0), args.mode)   # machine PLC
    analytics = LunarMom(deployment.runtime(1), args.mode)    # anomaly detector
    dashboard = LunarMom(deployment.runtime(2), args.mode)    # operator view

    received = {"analytics": 0, "dashboard": 0, "alerts": 0}
    latencies = []

    def on_telemetry(name):
        def callback(_topic, payload):
            received[name] += 1
            sent_at = int(bytes(payload[:16]).decode().strip() or 0)
            latencies.append(sim.now - sent_at)

        return callback

    analytics.subscribe("factory/line1/telemetry", on_telemetry("analytics"))
    dashboard.subscribe("factory/line1/telemetry", on_telemetry("dashboard"))
    controller.subscribe(
        "factory/line1/alerts",
        lambda _topic, payload: received.__setitem__("alerts", received["alerts"] + 1),
    )

    def publish_telemetry():
        for sample in range(args.samples):
            stamp = ("%16d" % sim.now).encode()
            reading = stamp + b" vibration=0.0031 temp=61.2C rpm=1180"
            yield from controller.publish("factory/line1/telemetry", data=reading)
            yield Timeout(100_000)  # 10 kHz sensor, decimated to 10 us period

    def raise_alert():
        # the analytics node publishes back an actuation alert
        yield Timeout(2_000_000)
        yield from analytics.publish(
            "factory/line1/alerts", data=b"line1: bearing wear detected, derate to 80%"
        )

    sim.process(publish_telemetry())
    sim.process(raise_alert())
    sim.run()

    print("mode           : %s (datapath: %s)" % (args.mode, controller.stream.datapath))
    print("telemetry      : %d samples -> analytics %d, dashboard %d"
          % (args.samples, received["analytics"], received["dashboard"]))
    print("alerts         : %d delivered back to the controller" % received["alerts"])
    print("delivery delay : mean %.2f us, max %.2f us"
          % (sum(latencies) / len(latencies) / 1e3, max(latencies) / 1e3))


if __name__ == "__main__":
    main()
