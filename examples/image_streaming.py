"""LUNAR Streaming example: real-time product inspection (paper §7.2).

Cameras photograph semi-finished products on a production line; frames are
streamed to a computing node for defect detection.  This example streams
small *real* frames (bytes are carried and verified end to end) so you can
see the fragmentation/reassembly machinery working, then reports FPS and
per-frame latency.

Run with::

    python examples/image_streaming.py [--frames 12] [--width 320]
"""

import argparse

from repro.apps.lunar_streaming import LunarStreamClient, LunarStreamServer
from repro.core.runtime import InsaneDeployment
from repro.hw import Testbed


def synth_frame(width, height, index):
    """A fake RGB image with a recognizable per-frame pattern."""
    row = bytes((index + x) % 256 for x in range(width * 3))
    return row * height


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=12)
    parser.add_argument("--width", type=int, default=320)
    parser.add_argument("--height", type=int, default=180)
    parser.add_argument("--mode", choices=("fast", "slow"), default="fast")
    args = parser.parse_args()

    testbed = Testbed.local(seed=3)
    sim = testbed.sim
    deployment = InsaneDeployment(testbed)
    server = LunarStreamServer(deployment.runtime(0), mode=args.mode)
    client = LunarStreamClient(deployment.runtime(1), mode=args.mode)

    frames = [synth_frame(args.width, args.height, i) for i in range(args.frames)]
    delivered = []

    def camera_server():
        yield from server.wait_for_client()
        queue = list(frames)
        yield from server.loop(
            get_frame=lambda: queue.pop(0) if queue else None,
            wait_next=lambda: iter(()),
            frames=args.frames,
        )

    def inspection_client():
        yield from client.connect()
        received = yield from client.receive_frames(args.frames)
        delivered.extend(received)

    sim.process(camera_server())
    sim.process(inspection_client())
    sim.run()

    # verify every frame arrived bit-exact
    for index, (frame, _done) in enumerate(delivered):
        assert frame == frames[index], "frame %d corrupted in transit" % index

    latencies = [done - start for (_f, done), start in zip(delivered, server.frame_starts)]
    elapsed = delivered[-1][1] - server.frame_starts[0]
    frame_kb = len(frames[0]) / 1024.0
    print("streamed  : %d frames of %.0f KB (%dx%d RGB) over %s"
          % (args.frames, frame_kb, args.width, args.height, server.stream.datapath))
    print("integrity : all frames verified bit-exact after reassembly")
    print("rate      : %.0f FPS" % (args.frames * 1e9 / elapsed))
    print("latency   : mean %.0f us per frame" % (sum(latencies) / len(latencies) / 1e3))


if __name__ == "__main__":
    main()
