"""Message-lifecycle tracing and latency breakdown (``repro.obs``).

Attaches a :class:`~repro.obs.LifecycleTracer` to a deployment via
``RuntimeConfig(tracer=...)`` and runs one paced flow per datapath, with
the QoS mapping pinned so each run exercises exactly one stack.  Every
message is followed from ``emit_data`` through the scheduler, the
datapath TX stack, the NIC queue, the wire, and the receive pipeline to
the application's ``consume_data`` returning; the spans decompose into
the per-stage critical path (paper §6) and export as a Chrome-trace JSON
loadable in Perfetto or ``chrome://tracing``.

Run with::

    python examples/latency_breakdown.py [--messages 100] [--out trace.json]
"""

import argparse

from repro.bench.breakdown import run_traced_breakdown
from repro.obs import breakdown_report, format_breakdown, write_chrome_trace


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--messages", type=int, default=100)
    parser.add_argument("--profile", choices=("local", "cloud"), default="local")
    parser.add_argument("--out", default=None,
                        help="write a Chrome-trace JSON to this path")
    args = parser.parse_args()

    tracers = run_traced_breakdown(
        profile=args.profile, messages=args.messages, seed=0
    )
    report = breakdown_report(tracers)
    print(format_breakdown(report))
    print()
    for name, tracer in tracers.items():
        summary = tracer.summary()
        print("%-5s traced %d message(s), %d packet(s), states: %s"
              % (name, summary["messages"], summary["packets"],
                 dict(sorted(summary["states"].items()))))
    stage_order = report["stage_order"]
    print("\ncritical-path stages: %s" % " -> ".join(stage_order))
    if args.out:
        write_chrome_trace(args.out, tracers)
        print("Chrome trace written to %s (load in Perfetto)" % args.out)


if __name__ == "__main__":
    main()
