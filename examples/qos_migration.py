"""Portability demo: the same application code on heterogeneous edge nodes.

This is INSANE's headline capability (paper §1, §5.2): application
components migrate across edge sites with different network acceleration
hardware, and the middleware re-binds their streams at deployment time.
The ``latency_probe`` function below is deployed — UNCHANGED — on:

* a bare-metal edge rack with an RDMA NIC,
* a standard edge node (DPDK and XDP available, no RDMA),
* the same node under a constrained resource budget (no spinning cores),
* a commodity cloud VM with no acceleration at all (fallback + warning).

Run with::

    python examples/qos_migration.py
"""

from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.hw import LOCAL_TESTBED, Testbed
from repro.simnet import Tally


def latency_probe(testbed, deployment, policy, rounds=150):
    """The application: a tiny request/response latency probe.

    Note there is nothing network-specific here — no sockets, no DPDK, no
    verbs.  The SAME function runs on every deployment site.
    """
    sim = testbed.sim
    client = Session(deployment.runtime(0), "probe-client")
    server = Session(deployment.runtime(1), "probe-server")
    c_stream = client.create_stream(policy, name="probe")
    s_stream = server.create_stream(policy, name="probe")
    source = client.create_source(c_stream, channel=1)
    reply_sink = client.create_sink(c_stream, channel=2)
    request_sink = server.create_sink(s_stream, channel=1)
    reply_source = server.create_source(s_stream, channel=2)
    rtts = Tally("probe")

    def client_proc():
        for _ in range(rounds):
            start = sim.now
            buffer = yield from client.get_buffer_wait(source, 64)
            yield from client.emit_data(source, buffer, length=64)
            delivery = yield from client.consume_data(reply_sink)
            client.release_buffer(reply_sink, delivery)
            rtts.record(sim.now - start)

    def server_proc():
        while True:
            delivery = yield from server.consume_data(request_sink)
            server.release_buffer(request_sink, delivery)
            buffer = yield from server.get_buffer_wait(reply_source, 64)
            yield from server.emit_data(reply_source, buffer, length=64)

    sim.process(server_proc())
    sim.process(client_proc())
    sim.run()
    return c_stream, rtts


SITES = [
    ("bare-metal RDMA rack", LOCAL_TESTBED.replace(rdma_nic=True), QosPolicy.fast()),
    ("edge node (DPDK/XDP)", LOCAL_TESTBED, QosPolicy.fast()),
    ("edge node, constrained budget", LOCAL_TESTBED, QosPolicy.fast(constrained=True)),
    ("commodity cloud VM", LOCAL_TESTBED.replace(dpdk_capable=False, xdp_capable=False),
     QosPolicy.fast()),
]


def main():
    print("deploying the identical probe application on four sites:\n")
    header = "%-32s %-10s %-10s %s" % ("site", "datapath", "RTT (us)", "notes")
    print(header)
    print("-" * len(header))
    for label, profile, policy in SITES:
        testbed = Testbed(profile, seed=11)
        deployment = InsaneDeployment(testbed)
        stream, rtts = latency_probe(testbed, deployment, policy)
        notes = ""
        if stream.decision.fallback:
            notes = "FALLBACK: " + deployment.runtime(0).warnings[0][:40] + "..."
        print("%-32s %-10s %-10.2f %s"
              % (label, stream.datapath, rtts.mean / 1000.0, notes))
    print("\napplication source: identical on every site — only the QoS "
          "policy and the\nhost's capabilities differ; INSANE performs the "
          "binding at stream creation.")


if __name__ == "__main__":
    main()
