"""Bring-your-own transport: uTCP over raw DPDK (paper §3).

Kernel-bypassing datapaths hand you raw datagrams; anything stream-shaped
is your problem ("the user has to provide its own userspace network and
transport protocols, e.g., mTCP").  This example transfers a file over
the repository's uTCP — handshake, sliding window, retransmission — on a
lossy link, directly on the DPDK datapath with no kernel and no INSANE
runtime involved.

Run with::

    python examples/utcp_file_transfer.py [--loss 0.1] [--kb 256]
"""

import argparse

from repro.datapaths import DpdkDatapath
from repro.hw import Testbed
from repro.netstack.utcp import UtcpStack

PORT = 8700


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loss", type=float, default=0.1)
    parser.add_argument("--kb", type=int, default=256, help="file size in KB")
    args = parser.parse_args()

    testbed = Testbed.local(seed=77)
    for link in testbed.links:
        link.loss_rate = args.loss
    sim = testbed.sim

    uploader = UtcpStack(DpdkDatapath(testbed.hosts[0]), PORT)
    downloader = UtcpStack(DpdkDatapath(testbed.hosts[1]), PORT).listen()

    file_bytes = bytes((i * 17 + i // 251) % 256 for i in range(args.kb * 1024))
    result = {}

    def upload():
        connection = yield from uploader.connect(testbed.hosts[1].ip)
        yield from connection.send(file_bytes)
        yield from connection.close()

    def download():
        connection = yield from downloader.accept()
        collected = bytearray()
        while True:
            chunk = yield from connection.recv(16 * 1024)
            if not chunk:
                break
            collected.extend(chunk)
        result["file"] = bytes(collected)
        result["done_ns"] = sim.now

    sim.process(download(), name="download")
    sim.process(upload(), name="upload")
    sim.run()

    assert result["file"] == file_bytes, "file corrupted in transit!"
    elapsed_ms = result["done_ns"] / 1e6
    print("transferred : %d KB over uTCP/DPDK, byte-exact" % args.kb)
    print("link loss   : %.0f%%" % (args.loss * 100))
    print("segments    : %d sent, %d retransmitted (%.0f%% overhead)"
          % (uploader.segments_sent.value, uploader.retransmits.value,
             100.0 * uploader.retransmits.value / max(1, uploader.segments_sent.value)))
    print("elapsed     : %.2f ms simulated -> %.1f Mbit/s effective"
          % (elapsed_ms, args.kb * 8 / 1024.0 / (elapsed_ms / 1000.0) if elapsed_ms else 0))


if __name__ == "__main__":
    main()
