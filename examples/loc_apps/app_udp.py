"""The benchmarking application written against UDP sockets (Table 3).

Compared to the INSANE version, the application must now choose and manage
its own transport details: bind ports on both hosts, pick a receive
strategy (blocking vs. busy-polling), size its socket buffers, frame its
own message payloads, and handle partial batches — and it is forever tied
to the kernel stack: there is no way to accelerate it without a rewrite.
"""

import argparse

from repro.bench.harness import make_testbed
from repro.datapaths import KernelUdpDatapath
from repro.netstack import Packet
from repro.simnet import RateMeter, Tally

PING_PORT = 9100
FLOOD_PORT = 9101


def open_socket(host, port, blocking, buffer_slots=None):
    datapath = KernelUdpDatapath.get(host)
    sock = datapath.socket(port, blocking=blocking)
    if buffer_slots is not None:
        # enlarge the receive buffer so the receiver keeps up (SO_RCVBUF)
        sock.buffer.capacity = buffer_slots
    return sock


def make_packet(src_host, dst_host, port, size):
    return Packet(src_host.ip, dst_host.ip, port, port, payload_len=size)


def latency(args):
    testbed = make_testbed(args.profile, seed=args.seed)
    sim = testbed.sim
    client_host, server_host = testbed.hosts[0], testbed.hosts[1]
    client = open_socket(client_host, PING_PORT, args.blocking)
    server = open_socket(server_host, PING_PORT, args.blocking)
    rtts = Tally("rtt")

    def client_proc():
        for _ in range(args.rounds):
            start = sim.now
            yield from client.send(make_packet(client_host, server_host, PING_PORT, args.size))
            reply = yield from client.recv()
            if reply.payload_len != args.size:
                raise RuntimeError("unexpected echo size %d" % reply.payload_len)
            rtts.record(sim.now - start)

    def server_proc():
        while True:
            request = yield from server.recv()
            yield from server.send(
                make_packet(server_host, client_host, PING_PORT, request.payload_len)
            )

    sim.process(server_proc())
    sim.process(client_proc())
    sim.run()
    return rtts


def throughput(args):
    testbed = make_testbed(args.profile, seed=args.seed)
    sim = testbed.sim
    client_host, server_host = testbed.hosts[0], testbed.hosts[1]
    sender_sock = open_socket(client_host, FLOOD_PORT, blocking=False)
    receiver_sock = open_socket(server_host, FLOOD_PORT, blocking=False, buffer_slots=8192)
    meter = RateMeter("goodput")

    def sender():
        remaining = args.messages
        while remaining:
            count = min(args.burst, remaining)
            batch = [
                make_packet(client_host, server_host, FLOOD_PORT, args.size)
                for _ in range(count)
            ]
            yield from sender_sock.send_many(batch)
            remaining -= count

    def receiver():
        received = 0
        while received < args.messages:
            batch = yield from receiver_sock.recv_many(args.burst)
            for packet in batch:
                if packet.payload_len != args.size:
                    raise RuntimeError("corrupt datagram")
                meter.record(sim.now, args.size)
            received += len(batch)

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    return meter


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=("local", "cloud"), default="local")
    parser.add_argument("--blocking", action="store_true",
                        help="use blocking receive (default: busy-poll)")
    parser.add_argument("--size", type=int, default=64)
    parser.add_argument("--rounds", type=int, default=1000)
    parser.add_argument("--messages", type=int, default=5000)
    parser.add_argument("--burst", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    rtts = latency(args)
    print("RTT  : mean %.2f us  median %.2f us  p99 %.2f us"
          % (rtts.mean / 1e3, rtts.median / 1e3, rtts.percentile(99) / 1e3))
    meter = throughput(args)
    print("Tput : %.2f Gbps (%d messages of %d B)"
          % (meter.gbps(), args.messages, args.size))


if __name__ == "__main__":
    main()
