"""The benchmarking application written against the INSANE API (Table 3).

Latency (ping-pong) and throughput (flood) in one program.  Note what is
ABSENT compared to the UDP and DPDK versions: no socket/port setup, no poll
strategy choice, no memory-pool management, no header processing — the
middleware owns all of it; the application only states its QoS.
"""

import argparse

from repro.bench.harness import make_testbed
from repro.core import QosPolicy, Session
from repro.core.runtime import InsaneDeployment
from repro.simnet import RateMeter, Tally


def build(args):
    testbed = make_testbed(args.profile, seed=args.seed)
    deployment = InsaneDeployment(testbed)
    policy = QosPolicy.fast() if args.mode == "fast" else QosPolicy.slow()
    client = Session(deployment.runtime(0), "client")
    server = Session(deployment.runtime(1), "server")
    c_stream = client.create_stream(policy, name="bench")
    s_stream = server.create_stream(policy, name="bench")
    return testbed, client, server, c_stream, s_stream


def latency(args):
    testbed, client, server, c_stream, s_stream = build(args)
    sim = testbed.sim
    source = client.create_source(c_stream, channel=1)
    echo_sink = client.create_sink(c_stream, channel=2)
    server_sink = server.create_sink(s_stream, channel=1)
    server_source = server.create_source(s_stream, channel=2)
    rtts = Tally("rtt")

    def client_proc():
        for _ in range(args.rounds):
            start = sim.now
            buffer = yield from client.get_buffer_wait(source, args.size)
            yield from client.emit_data(source, buffer, length=args.size)
            delivery = yield from client.consume_data(echo_sink)
            client.release_buffer(echo_sink, delivery)
            rtts.record(sim.now - start)

    def server_proc():
        while True:
            delivery = yield from server.consume_data(server_sink)
            server.release_buffer(server_sink, delivery)
            buffer = yield from server.get_buffer_wait(server_source, args.size)
            yield from server.emit_data(server_source, buffer, length=args.size)

    sim.process(server_proc())
    sim.process(client_proc())
    sim.run()
    return rtts


def throughput(args):
    testbed, client, server, c_stream, s_stream = build(args)
    sim = testbed.sim
    source = client.create_source(c_stream, channel=5)
    sink = server.create_sink(s_stream, channel=5)
    meter = RateMeter("goodput")

    def sender():
        for _ in range(args.messages):
            buffer = yield from client.get_buffer_wait(source, args.size)
            yield from client.emit_data(source, buffer, length=args.size)

    def receiver():
        for _ in range(args.messages):
            delivery = yield from server.consume_data(sink)
            server.release_buffer(sink, delivery)
            meter.record(sim.now, args.size)

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    return meter


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("fast", "slow"), default="fast")
    parser.add_argument("--profile", choices=("local", "cloud"), default="local")
    parser.add_argument("--size", type=int, default=64)
    parser.add_argument("--rounds", type=int, default=1000)
    parser.add_argument("--messages", type=int, default=5000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    rtts = latency(args)
    print("RTT  : mean %.2f us  median %.2f us  p99 %.2f us"
          % (rtts.mean / 1e3, rtts.median / 1e3, rtts.percentile(99) / 1e3))
    meter = throughput(args)
    print("Tput : %.2f Gbps (%d messages of %d B)"
          % (meter.gbps(), args.messages, args.size))


if __name__ == "__main__":
    main()
