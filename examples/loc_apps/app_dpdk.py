"""The benchmarking application written against native DPDK (Table 3).

Everything the middleware (or the kernel) normally hides is now the
application's problem: environment/port initialization, mempool sizing and
mbuf lifecycle, receive-queue setup and flow steering, burst transmit and
receive loops, AND a private network stack — DPDK delivers raw frames, so
this program builds and parses its own Ethernet/IPv4/UDP headers.
"""

import argparse

from repro.bench.harness import make_testbed
from repro.core.memory import SlotPool
from repro.datapaths import DpdkDatapath
from repro.netstack import (
    EthernetHeader,
    Ipv4Header,
    MacAddress,
    Packet,
    UdpHeader,
)
from repro.simnet import RateMeter, Tally

PING_PORT = 9200
FLOOD_PORT = 9201
MBUF_SIZE = 9216


class DpdkContext:
    """EAL-style initialization: mempool, port, queues, MAC addressing."""

    def __init__(self, host, mempool_slots, ports):
        self.host = host
        self.mempool = SlotPool(
            host.sim, slots=mempool_slots, slot_bytes=MBUF_SIZE,
            name=host.name + ".mempool",
        )
        self.datapath = DpdkDatapath(host, mempool=self.mempool)
        self.queues = {}
        for port in ports:
            self.queues[port] = self.datapath.open_port(port)
        self.mac = MacAddress.from_index(int(host.ip.rsplit(".", 1)[1]))

    def close(self):
        for port in list(self.queues):
            self.datapath.close_port(port)


class UserspaceStack:
    """The private network stack a DPDK application must bring itself."""

    def __init__(self, context, peer_mac):
        self.context = context
        self.peer_mac = peer_mac
        self.ident = 0

    def build_headers(self, src_ip, dst_ip, port, payload_len):
        self.ident = (self.ident + 1) & 0xFFFF
        eth = EthernetHeader(self.peer_mac, self.context.mac)
        ip = Ipv4Header(src_ip, dst_ip, 20 + 8 + payload_len, identification=self.ident)
        udp = UdpHeader(port, port, payload_len)
        return eth.to_bytes() + ip.to_bytes() + udp.to_bytes()

    def parse_headers(self, headers):
        eth = EthernetHeader.from_bytes(headers[0:14])
        if eth.dst != self.context.mac:
            raise RuntimeError("frame for foreign MAC %s" % eth.dst)
        ip = Ipv4Header.from_bytes(headers[14:34])
        udp = UdpHeader.from_bytes(headers[34:42])
        return ip, udp


def make_frame(stack, src_host, dst_host, port, size):
    headers = stack.build_headers(src_host.ip, dst_host.ip, port, size)
    packet = Packet(src_host.ip, dst_host.ip, port, port, payload_len=size)
    packet.meta["wire_headers"] = headers
    return packet


def verify_frame(stack, packet, expected_size):
    headers = packet.meta.get("wire_headers")
    if headers is not None:
        ip, udp = stack.parse_headers(headers)
        if udp.payload_length != expected_size:
            raise RuntimeError("unexpected payload length %d" % udp.payload_length)


def latency(args):
    testbed = make_testbed(args.profile, seed=args.seed)
    sim = testbed.sim
    client_host, server_host = testbed.hosts[0], testbed.hosts[1]
    client_ctx = DpdkContext(client_host, args.mempool, [PING_PORT])
    server_ctx = DpdkContext(server_host, args.mempool, [PING_PORT])
    client_stack = UserspaceStack(client_ctx, server_ctx.mac)
    server_stack = UserspaceStack(server_ctx, client_ctx.mac)
    rtts = Tally("rtt")

    def client_proc():
        for _ in range(args.rounds):
            start = sim.now
            frame = make_frame(client_stack, client_host, server_host, PING_PORT, args.size)
            yield from client_ctx.datapath.send(frame)
            replies = yield from client_ctx.datapath.recv_burst(
                client_ctx.queues[PING_PORT], 1
            )
            for reply in replies:
                verify_frame(client_stack, reply, args.size)
                DpdkDatapath.release_rx(reply)
            rtts.record(sim.now - start)

    def server_proc():
        while True:
            requests = yield from server_ctx.datapath.recv_burst(
                server_ctx.queues[PING_PORT], args.burst
            )
            for request in requests:
                verify_frame(server_stack, request, args.size)
                DpdkDatapath.release_rx(request)
                echo = make_frame(server_stack, server_host, client_host,
                                  PING_PORT, request.payload_len)
                yield from server_ctx.datapath.send(echo)

    sim.process(server_proc())
    sim.process(client_proc())
    sim.run()
    client_ctx.close()
    server_ctx.close()
    return rtts


def throughput(args):
    testbed = make_testbed(args.profile, seed=args.seed)
    sim = testbed.sim
    client_host, server_host = testbed.hosts[0], testbed.hosts[1]
    client_ctx = DpdkContext(client_host, args.mempool, [FLOOD_PORT])
    server_ctx = DpdkContext(server_host, args.mempool, [FLOOD_PORT])
    client_stack = UserspaceStack(client_ctx, server_ctx.mac)
    server_stack = UserspaceStack(server_ctx, client_ctx.mac)
    meter = RateMeter("goodput")
    drops_at_start = server_ctx.datapath.mempool_drops.value

    def sender():
        remaining = args.messages
        while remaining:
            count = min(args.burst, remaining)
            batch = [
                make_frame(client_stack, client_host, server_host, FLOOD_PORT, args.size)
                for _ in range(count)
            ]
            yield from client_ctx.datapath.send_many(batch)
            remaining -= count

    def receiver():
        received = 0
        while received < args.messages:
            batch = yield from server_ctx.datapath.recv_burst(
                server_ctx.queues[FLOOD_PORT], args.burst
            )
            for packet in batch:
                verify_frame(server_stack, packet, args.size)
                meter.record(sim.now, args.size)
                DpdkDatapath.release_rx(packet)
            received += len(batch)
            dropped = server_ctx.datapath.mempool_drops.value - drops_at_start
            if dropped and received + dropped >= args.messages:
                break  # out of mbufs: account and stop rather than hang

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    client_ctx.close()
    server_ctx.close()
    return meter


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=("local", "cloud"), default="local")
    parser.add_argument("--size", type=int, default=64)
    parser.add_argument("--rounds", type=int, default=1000)
    parser.add_argument("--messages", type=int, default=5000)
    parser.add_argument("--burst", type=int, default=32)
    parser.add_argument("--mempool", type=int, default=2048)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    rtts = latency(args)
    print("RTT  : mean %.2f us  median %.2f us  p99 %.2f us"
          % (rtts.mean / 1e3, rtts.median / 1e3, rtts.percentile(99) / 1e3))
    meter = throughput(args)
    print("Tput : %.2f Gbps (%d messages of %d B)"
          % (meter.gbps(), args.messages, args.size))


if __name__ == "__main__":
    main()
